#!/usr/bin/env python3
"""Collate BENCH_*.json artifacts into one BENCH_summary.json (stdlib only).

Usage: bench_summary.py [BENCH_DIR] [-o OUTPUT]

Scans BENCH_DIR (default: the current directory) for files matching
BENCH_*.json — the per-bench artifacts emitted by the gating benchmarks
(bench_cpu, bench_aggfunc, bench_iterset, bench_memo_rerun,
bench_concurrent_runs, ...) — and writes a single machine-readable
roll-up with, per bench:

  - every scalar top-level field (sf, counts, *_speedup_* ratios, ...),
    so headline numbers are greppable without knowing each bench's
    nested schema;
  - its checks_ok verdict.

plus an overall `all_checks_ok` conjunction. Exits non-zero if any bench
reported failed checks or if no artifacts were found, so CI can gate on
the collation step itself.
"""

import argparse
import glob
import json
import os
import sys

SUMMARY_NAME = "BENCH_summary.json"


def scalars(doc):
    """Top-level scalar fields of a bench artifact, in file order."""
    out = {}
    for key, value in doc.items():
        if isinstance(value, bool) or isinstance(value, (int, float, str)):
            out[key] = value
    return out


def main():
    parser = argparse.ArgumentParser(
        description="Collate BENCH_*.json into BENCH_summary.json")
    parser.add_argument("bench_dir", nargs="?", default=".",
                        help="directory holding BENCH_*.json artifacts")
    parser.add_argument("-o", "--output", default=None,
                        help=f"output path (default: BENCH_DIR/{SUMMARY_NAME})")
    args = parser.parse_args()

    paths = sorted(glob.glob(os.path.join(args.bench_dir, "BENCH_*.json")))
    paths = [p for p in paths if os.path.basename(p) != SUMMARY_NAME]
    if not paths:
        print(f"bench_summary: no BENCH_*.json under {args.bench_dir}",
              file=sys.stderr)
        return 1

    benches = {}
    all_ok = True
    for path in paths:
        name = os.path.basename(path)[len("BENCH_"):-len(".json")]
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"bench_summary: cannot load {path}: {e}", file=sys.stderr)
            return 1
        entry = scalars(doc)
        entry["file"] = os.path.basename(path)
        ok = doc.get("checks_ok")
        if ok is not True:
            all_ok = False
            print(f"bench_summary: {path}: checks_ok is {ok!r}",
                  file=sys.stderr)
        benches[name] = entry

    summary = {"benches": benches, "all_checks_ok": all_ok}
    out_path = args.output or os.path.join(args.bench_dir, SUMMARY_NAME)
    with open(out_path, "w") as f:
        json.dump(summary, f, indent=2)
        f.write("\n")

    for name, entry in benches.items():
        headlines = ", ".join(
            f"{k}={v}" for k, v in entry.items()
            if "speedup" in k or k == "checks_ok")
        print(f"  {name:12s} {headlines}")
    print(f"bench_summary: wrote {out_path} "
          f"({len(benches)} benches, all_checks_ok={all_ok})")
    return 0 if all_ok else 1


if __name__ == "__main__":
    sys.exit(main())

// rql_serverd: the RQL daemon. Serves one snapshot store over a Unix
// domain socket (the server/wire.h protocol); every connection gets a
// session (attached handle + private metadata database + engine), RQL
// runs go through the admission-controlled scheduler, and concurrent
// sessions share the store's caches — coalesced SPT builds, single-
// flight SharedScanCache decodes — exactly like in-process concurrent
// engines do.
//
// Usage:
//   rql_serverd --socket PATH [options]
//
// Options:
//   --socket PATH          Unix socket to listen on (required)
//   --store PREFIX         persistent databases <PREFIX>_data/_meta
//                          (in-memory scratch store when omitted)
//   --seed-demo            create a small demo history (table `kv`,
//                          8 snapshots) so clients have data to query
//   --max-sessions N       concurrent session cap        (default 32)
//   --dispatch N           concurrent runs               (default 2)
//   --queue-limit N        pending-run admission bound   (default 16)
//   --workers N            shared parallel-worker budget (default 4)
//   --idle-timeout-ms N    disconnect idle sessions      (default off)
//   --batch                enable vectorized Qq execution
//
// The daemon exits on SIGINT/SIGTERM after a clean Stop(): sessions are
// disconnected, their runs cancelled and drained, the socket unlinked.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "server/server.h"
#include "storage/env.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--store PREFIX] [--seed-demo]\n"
               "          [--max-sessions N] [--dispatch N] "
               "[--queue-limit N]\n"
               "          [--workers N] [--idle-timeout-ms N] [--batch]\n",
               argv0);
  return 2;
}

/// A tiny history for smoke tests: table kv(k, v), 8 snapshots, each
/// bumping v on a sliding subset of keys.
rql::Status SeedDemo(rql::server::Server* server) {
  rql::sql::Database* data = server->data();
  RQL_RETURN_IF_ERROR(
      data->Exec("CREATE TABLE IF NOT EXISTS kv (k INTEGER, v INTEGER)"));
  for (int k = 0; k < 100; ++k) {
    RQL_RETURN_IF_ERROR(data->Exec("INSERT INTO kv VALUES (" +
                                   std::to_string(k) + ", 0)"));
  }
  rql::RqlEngine engine(data, server->meta());
  RQL_RETURN_IF_ERROR(engine.EnsureSnapIds());
  for (int s = 0; s < 8; ++s) {
    RQL_RETURN_IF_ERROR(data->Exec("UPDATE kv SET v = v + 1 WHERE k % 7 = " +
                                   std::to_string(s % 7)));
    RQL_RETURN_IF_ERROR(
        engine.CommitWithSnapshot("", "demo-" + std::to_string(s)).status());
  }
  return rql::Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  rql::server::ServerOptions options;
  std::string store_prefix;
  bool seed_demo = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--socket") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.socket_path = v;
    } else if (arg == "--store") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      store_prefix = v;
    } else if (arg == "--seed-demo") {
      seed_demo = true;
    } else if (arg == "--max-sessions") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.max_sessions = std::atoi(v);
    } else if (arg == "--dispatch") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.scheduler.dispatch_threads = std::atoi(v);
    } else if (arg == "--queue-limit") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.scheduler.queue_limit = std::atoi(v);
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.scheduler.worker_budget = std::atoi(v);
    } else if (arg == "--idle-timeout-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.idle_timeout_us = std::atoll(v) * 1000;
    } else if (arg == "--batch") {
      options.engine.batch_execution = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (options.socket_path.empty()) return Usage(argv[0]);

  rql::storage::InMemoryEnv mem_env;
  rql::storage::PosixEnv posix_env;
  rql::storage::Env* env = &mem_env;
  std::string prefix = "serverd";
  if (!store_prefix.empty()) {
    env = &posix_env;
    prefix = store_prefix;
  }

  auto server = rql::server::Server::Open(env, prefix, options);
  if (!server.ok()) {
    std::fprintf(stderr, "cannot open store: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  if (seed_demo) {
    rql::Status st = SeedDemo(server->get());
    if (!st.ok()) {
      std::fprintf(stderr, "cannot seed demo data: %s\n",
                   st.ToString().c_str());
      return 1;
    }
  }
  rql::Status st = (*server)->Start();
  if (!st.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("rql_serverd listening on %s (%s store '%s')\n",
              options.socket_path.c_str(),
              store_prefix.empty() ? "in-memory" : "persistent",
              prefix.c_str());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("shutting down\n");
  (*server)->Stop();
  return 0;
}

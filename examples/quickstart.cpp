// Quickstart: the paper's running example (Figures 1-3) end to end.
//
// Creates the LoggedIn table, declares three snapshots with COMMIT WITH
// SNAPSHOT, runs retrospective AS OF queries, and then uses each of the
// four RQL mechanisms over the snapshot set.
//
// Build & run:  ./examples/quickstart

#include <cstdio>

#include "rql/rql.h"
#include "sql/database.h"
#include "storage/env.h"

using rql::RqlEngine;
using rql::Status;
using rql::sql::Database;
using rql::sql::QueryResult;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "error at %s: %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

void PrintResult(Database* db, const std::string& title,
                 const std::string& sql) {
  std::printf("\n-- %s\n   %s\n", title.c_str(), sql.c_str());
  auto result = db->Query(sql);
  Check(result.status(), sql.c_str());
  for (const auto& col : result->columns) std::printf("%-22s", col.c_str());
  std::printf("\n");
  for (const auto& row : result->rows) {
    for (const auto& value : row) {
      std::printf("%-22s", value.ToString().c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  rql::storage::InMemoryEnv env;

  // Two databases, as in the paper's architecture (Fig. 5): the
  // snapshotable application data, and a separate non-snapshotable
  // metadata database holding SnapIds and RQL result tables.
  auto data = Database::Open(&env, "app_data");
  auto meta = Database::Open(&env, "app_meta");
  Check(data.status(), "open data db");
  Check(meta.status(), "open meta db");
  RqlEngine rql(data->get(), meta->get());
  Check(rql.EnsureSnapIds(), "create SnapIds");

  // --- Figure 3: populate and declare snapshots -------------------------
  Check((*data)->Exec(
            "CREATE TABLE LoggedIn (l_userid TEXT, l_time TEXT, "
            "l_country TEXT)"),
        "create LoggedIn");
  Check((*data)->Exec(
            "INSERT INTO LoggedIn VALUES "
            "('UserA', '2008-11-09 13:23:44', 'USA'), "
            "('UserB', '2008-11-09 15:45:21', 'UK'), "
            "('UserC', '2008-11-09 15:45:21', 'USA')"),
        "insert users");
  Check(rql.CommitWithSnapshot("2008-11-09 23:59:59").status(), "snapshot 1");

  Check((*data)->Exec("BEGIN; DELETE FROM LoggedIn WHERE l_userid = 'UserA';"),
        "UserA logs out");
  Check(rql.CommitWithSnapshot("2008-11-10 23:59:59").status(), "snapshot 2");

  Check((*data)->Exec(
            "BEGIN; INSERT INTO LoggedIn (l_userid, l_time, l_country) "
            "VALUES ('UserD', '2008-11-11 10:08:04', 'UK');"),
        "UserD logs in");
  Check(rql.CommitWithSnapshot("2008-11-11 23:59:59").status(), "snapshot 3");

  // --- Retrospective single-snapshot queries (Retro's AS OF) ------------
  PrintResult(data->get(), "Figure 1a: snapshot 1",
              "SELECT AS OF 1 * FROM LoggedIn");
  PrintResult(data->get(), "Figure 1b: snapshot 2",
              "SELECT AS OF 2 * FROM LoggedIn");
  PrintResult(data->get(), "current state", "SELECT * FROM LoggedIn");
  PrintResult(meta->get(), "Figure 2: the SnapIds table",
              "SELECT snap_id, snap_ts FROM SnapIds");

  // --- RQL mechanisms ----------------------------------------------------
  Check(rql.CollateData(
            "SELECT snap_id FROM SnapIds",
            "SELECT DISTINCT l_userid, current_snapshot() AS sid "
            "FROM LoggedIn",
            "AllLogins"),
        "CollateData");
  PrintResult(meta->get(), "Collate Data: users per snapshot",
              "SELECT l_userid, sid FROM AllLogins ORDER BY sid, l_userid");

  Check(rql.AggregateDataInVariable(
            "SELECT snap_id FROM SnapIds",
            "SELECT DISTINCT 1 FROM LoggedIn WHERE l_userid = 'UserB'",
            "UserBSnapshots", "sum"),
        "AggregateDataInVariable");
  PrintResult(meta->get(),
              "Aggregate Data In Variable: #snapshots with UserB",
              "SELECT * FROM UserBSnapshots");

  Check(rql.AggregateDataInTable(
            "SELECT snap_id FROM SnapIds",
            "SELECT DISTINCT l_userid, l_time FROM LoggedIn", "FirstLogin",
            "(l_time,min)"),
        "AggregateDataInTable");
  PrintResult(meta->get(), "Aggregate Data In Table: first login per user",
              "SELECT l_userid, l_time FROM FirstLogin ORDER BY l_userid");

  Check(rql.CollateDataIntoIntervals("SELECT snap_id FROM SnapIds",
                                     "SELECT l_userid FROM LoggedIn",
                                     "Sessions"),
        "CollateDataIntoIntervals");
  PrintResult(meta->get(),
              "Collate Data Into Intervals: login lifetimes",
              "SELECT l_userid, start_snapshot, end_snapshot FROM Sessions "
              "ORDER BY l_userid");

  // --- The UDF-embedded form from Section 3 ------------------------------
  Check(rql.RegisterUdfs(), "register UDFs");
  Check((*meta)->Exec(
            "SELECT CollateData(snap_id, "
            "'SELECT l_country, COUNT(*) AS c FROM LoggedIn "
            "GROUP BY l_country', 'ByCountry') FROM SnapIds"),
        "UDF-form CollateData");
  Check(rql.FinishUdfRuns(), "finish UDF runs");
  PrintResult(meta->get(), "UDF form: logins per country per snapshot",
              "SELECT l_country, c FROM ByCountry ORDER BY l_country");

  std::printf("\nquickstart finished OK\n");
  return 0;
}

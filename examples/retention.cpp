// Operations scenario: bounding the snapshot archive with retention.
//
// The Pagelog grows with every update epoch, "limited only by the
// available disk space" (paper, Section 4). This example builds a rolling
// history over a sensor-readings table, watches the archive grow, then
// applies a 30-snapshot retention policy with RqlEngine::TruncateHistory:
// old snapshots disappear, their exclusive archive space is reclaimed,
// and retrospective queries keep working over the retained window.
//
// Build & run:  ./examples/retention

#include <cstdio>
#include <string>

#include "common/random.h"
#include "rql/rql.h"
#include "sql/database.h"
#include "storage/env.h"

using rql::RqlEngine;
using rql::Status;
using rql::sql::Database;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "error at %s: %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

double ArchiveMiB(Database* db) {
  return static_cast<double>(db->store()->pagelog()->SizeBytes()) /
         (1024.0 * 1024.0);
}

}  // namespace

int main() {
  rql::storage::InMemoryEnv env;
  auto data = Database::Open(&env, "sensors");
  auto meta = Database::Open(&env, "sensors_meta");
  Check(data.status(), "open data");
  Check(meta.status(), "open meta");
  Database* db = data->get();
  RqlEngine rql(db, meta->get());
  Check(rql.EnsureSnapIds(), "SnapIds");

  Check(db->Exec("CREATE TABLE readings (sensor INTEGER, value REAL)"),
        "schema");
  constexpr int kSensors = 500;
  rql::Random rng(5);
  for (int s = 0; s < kSensors; ++s) {
    Check(db->Exec("INSERT INTO readings VALUES (" + std::to_string(s) +
                   ", 20.0)"),
          "seed");
  }

  // 60 measurement rounds, one snapshot each; every round rewrites every
  // sensor's value, so each epoch archives the whole table.
  constexpr int kRounds = 60;
  std::printf("building %d snapshots...\n", kRounds);
  for (int round = 1; round <= kRounds; ++round) {
    Check(db->Exec("BEGIN"), "begin");
    Check(db->Exec("UPDATE readings SET value = value + " +
                   std::to_string(rng.NextDouble() - 0.5)),
          "measure");
    Check(rql.CommitWithSnapshot("round-" + std::to_string(round)).status(),
          "snapshot");
    if (round % 20 == 0) {
      std::printf("  after %3d snapshots: archive %.2f MiB\n", round,
                  ArchiveMiB(db));
    }
  }

  // A retrospective query over the full history still works.
  Check(rql.AggregateDataInVariable(
            "SELECT snap_id FROM SnapIds",
            "SELECT AVG(value) AS a FROM readings", "FullAvg", "avg"),
        "full-history query");
  auto full = meta->get()->QueryScalar("SELECT * FROM FullAvg");
  Check(full.status(), "full avg");
  std::printf("\nmean sensor value across all %d snapshots: %.3f\n",
              kRounds, full->AsDouble());

  // Retention: keep the most recent 30 snapshots.
  rql::retro::SnapshotId keep_from =
      db->store()->latest_snapshot() - 30 + 1;
  double before = ArchiveMiB(db);
  Check(rql.TruncateHistory(keep_from), "truncate");
  std::printf("\nretention (keep last 30): archive %.2f MiB -> %.2f MiB "
              "(%.1fx smaller)\n",
              before, ArchiveMiB(db), before / ArchiveMiB(db));
  std::printf("earliest snapshot: %u, latest: %u\n",
              db->store()->earliest_snapshot(),
              db->store()->latest_snapshot());

  // Old snapshots are gone; retained ones answer as before.
  auto dropped = db->Query("SELECT AS OF 1 COUNT(*) FROM readings");
  std::printf("reading dropped snapshot 1: %s\n",
              dropped.ok() ? "unexpected success"
                           : dropped.status().ToString().c_str());
  Check(rql.AggregateDataInVariable(
            "SELECT snap_id FROM SnapIds",
            "SELECT AVG(value) AS a FROM readings", "RecentAvg", "avg"),
        "retained-window query");
  auto recent = meta->get()->QueryScalar("SELECT * FROM RecentAvg");
  Check(recent.status(), "recent avg");
  std::printf("mean sensor value across the retained window: %.3f "
              "(%zu iterations)\n",
              recent->AsDouble(),
              rql.last_run_stats().iterations.size());

  // History continues normally after truncation.
  Check(db->Exec("BEGIN; UPDATE readings SET value = value + 1;"),
        "post-truncation update");
  Check(rql.CommitWithSnapshot("post-retention").status(), "new snapshot");
  auto newest = db->Query(
      "SELECT AS OF " + std::to_string(db->store()->latest_snapshot()) +
      " COUNT(*) FROM readings");
  Check(newest.status(), "newest snapshot query");
  std::printf("new snapshot %u declared and readable after retention\n",
              db->store()->latest_snapshot());

  std::printf("\nretention finished OK\n");
  return 0;
}

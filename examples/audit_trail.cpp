// Audit scenario: an accounts ledger with nightly snapshots, queried
// retrospectively to answer claim-checking questions formulated after the
// fact — the paper's motivating use case.
//
// Questions answered over the snapshot history:
//   1. Did account 'acme' ever have a negative balance? (fact check)
//   2. What is the maximum exposure (lowest balance) each account hit?
//   3. In which snapshot did total liabilities first exceed a threshold?
//   4. Over which snapshot ranges was each account frozen?
//
// Build & run:  ./examples/audit_trail

#include <cstdio>
#include <string>

#include "common/random.h"
#include "rql/rql.h"
#include "sql/database.h"
#include "storage/env.h"

using rql::RqlEngine;
using rql::Status;
using rql::sql::Database;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "error at %s: %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

void Print(Database* db, const std::string& title, const std::string& sql) {
  std::printf("\n== %s\n", title.c_str());
  auto result = db->Query(sql);
  Check(result.status(), sql.c_str());
  for (const auto& col : result->columns) std::printf("%-18s", col.c_str());
  std::printf("\n");
  for (const auto& row : result->rows) {
    for (const auto& value : row) {
      std::printf("%-18s", value.ToString().c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  rql::storage::InMemoryEnv env;
  auto data = Database::Open(&env, "ledger");
  auto meta = Database::Open(&env, "ledger_meta");
  Check(data.status(), "open data");
  Check(meta.status(), "open meta");
  Database* db = data->get();
  RqlEngine rql(db, meta->get());
  Check(rql.EnsureSnapIds(), "SnapIds");

  Check(db->Exec("CREATE TABLE accounts (name TEXT, balance REAL, "
                 "status TEXT)"),
        "schema");
  const char* names[] = {"acme", "globex", "initech", "umbrella", "hooli"};
  for (const char* name : names) {
    Check(db->Exec("INSERT INTO accounts VALUES ('" + std::string(name) +
                   "', 1000.0, 'active')"),
          "seed");
  }

  // Thirty days of activity, one snapshot per night.
  rql::Random rng(2024);
  for (int day = 1; day <= 30; ++day) {
    Check(db->Exec("BEGIN"), "begin day");
    for (const char* name : names) {
      double delta = static_cast<double>(rng.UniformRange(-400, 400));
      Check(db->Exec("UPDATE accounts SET balance = balance + " +
                     std::to_string(delta) + " WHERE name = '" + name + "'"),
            "post");
    }
    // Freeze/unfreeze umbrella for a stretch of days.
    if (day == 10 || day == 22) {
      Check(db->Exec(
                "UPDATE accounts SET status = 'frozen' "
                "WHERE name = 'umbrella'"),
            "freeze");
    }
    if (day == 14 || day == 27) {
      Check(db->Exec(
                "UPDATE accounts SET status = 'active' "
                "WHERE name = 'umbrella'"),
            "unfreeze");
    }
    Check(rql.CommitWithSnapshot("2026-06-" + std::to_string(day),
                                 "nightly")
              .status(),
          "snapshot");
  }

  // 1. Fact check: count the snapshots where acme was overdrawn.
  Check(rql.AggregateDataInVariable(
            "SELECT snap_id FROM SnapIds",
            "SELECT COUNT(*) FROM accounts "
            "WHERE name = 'acme' AND balance < 0",
            "AcmeOverdrawn", "sum"),
        "q1");
  Print(meta->get(), "Q1: nights on which acme was overdrawn",
        "SELECT * FROM AcmeOverdrawn");

  // 2. Maximum exposure per account across all snapshots.
  Check(rql.AggregateDataInTable(
            "SELECT snap_id FROM SnapIds",
            "SELECT name, balance FROM accounts", "Exposure",
            "(balance,min)"),
        "q2");
  Print(meta->get(), "Q2: lowest balance each account ever hit",
        "SELECT name, balance FROM Exposure ORDER BY balance");

  // 3. First snapshot where total negative balances (liabilities)
  //    exceeded 500 in absolute value: collate, then ordinary SQL.
  Check(rql.CollateData(
            "SELECT snap_id FROM SnapIds",
            "SELECT current_snapshot() AS sid, SUM(balance) AS exposure "
            "FROM accounts WHERE balance < 0",
            "Liabilities"),
        "q3");
  Print(meta->get(),
        "Q3: first night total liabilities dropped below -500",
        "SELECT MIN(sid) AS first_night FROM Liabilities "
        "WHERE exposure < -500");

  // 4. Frozen ranges for umbrella as lifetimes.
  Check(rql.CollateDataIntoIntervals(
            "SELECT snap_id FROM SnapIds",
            "SELECT name FROM accounts WHERE status = 'frozen'",
            "FrozenRanges"),
        "q4");
  Print(meta->get(), "Q4: snapshot ranges during which accounts were frozen",
        "SELECT name, start_snapshot, end_snapshot FROM FrozenRanges "
        "ORDER BY name, start_snapshot");

  std::printf("\naudit_trail finished OK\n");
  return 0;
}

// Decision-support retrospection over a TPC-H database: builds a small
// TPC-H instance, applies the refresh-function update workload with
// per-refresh snapshots (the paper's Section 5 setup), then answers
// business questions across the snapshot history, reporting the per-
// iteration cost breakdown RQL exposes.
//
// Build & run:  ./examples/tpch_retrospect

#include <cstdio>

#include "rql/rql.h"
#include "storage/env.h"
#include "tpch/workload.h"

using rql::RqlEngine;
using rql::Status;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "error at %s: %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

void Print(rql::sql::Database* db, const std::string& title,
           const std::string& sql) {
  std::printf("\n== %s\n", title.c_str());
  auto result = db->Query(sql);
  Check(result.status(), sql.c_str());
  for (const auto& col : result->columns) std::printf("%-16s", col.c_str());
  std::printf("\n");
  for (const auto& row : result->rows) {
    for (const auto& value : row) {
      std::printf("%-16s", value.ToString().c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  rql::storage::InMemoryEnv env;
  rql::tpch::HistoryConfig config;
  config.tpch.scale_factor = 0.002;  // 3000 orders — runs in a second
  config.workload = rql::tpch::WorkloadSpec::UW30();
  config.snapshots = 60;

  std::printf("building TPC-H history (%d snapshots, %s)...\n",
              config.snapshots, config.workload.name.c_str());
  auto history = rql::tpch::BuildHistory(&env, "tpch", config);
  Check(history.status(), "build history");
  RqlEngine* rql = (*history)->engine();
  rql::sql::Database* meta = (*history)->meta();

  // Average number of open orders per snapshot (the paper's Qq_io).
  Check(rql->AggregateDataInVariable(
            "SELECT snap_id FROM SnapIds",
            "SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'O'",
            "AvgOpenOrders", "avg"),
        "avg open orders");
  Print(meta, "average open orders per snapshot",
        "SELECT * FROM AvgOpenOrders");

  // Which snapshot held the highest total pending value?
  Check(rql->CollateData(
            "SELECT snap_id FROM SnapIds",
            "SELECT current_snapshot() AS sid, SUM(o_totalprice) AS pending "
            "FROM orders WHERE o_orderstatus = 'O'",
            "PendingBySnap"),
        "pending value");
  Print(meta, "top 5 snapshots by pending order value",
        "SELECT sid, pending FROM PendingBySnap "
        "ORDER BY pending DESC LIMIT 5");

  // Per-customer peak: the most orders any snapshot ever showed, using
  // the across-time GROUP BY mechanism.
  Check(rql->AggregateDataInTable(
            "SELECT snap_id FROM SnapIds",
            "SELECT o_custkey, COUNT(*) AS cn FROM orders "
            "GROUP BY o_custkey",
            "PeakOrders", "(cn,max)"),
        "per-customer peak");
  Print(meta, "customers with the highest single-snapshot order count",
        "SELECT o_custkey, cn FROM PeakOrders ORDER BY cn DESC LIMIT 5");

  // Cost breakdown of the last RQL run (what the paper's Figure 8 plots).
  const rql::RqlRunStats& stats = rql->last_run_stats();
  std::printf("\n== cost breakdown of the last RQL query (%zu iterations)\n",
              stats.iterations.size());
  std::printf("%-10s %10s %10s %10s %10s %8s\n", "snapshot", "io_us",
              "spt_us", "query_us", "udf_us", "plog_pg");
  for (size_t i = 0; i < stats.iterations.size(); i += 13) {
    const rql::RqlIterationStats& it = stats.iterations[i];
    std::printf("%-10u %10lld %10lld %10lld %10lld %8lld\n", it.snapshot,
                static_cast<long long>(it.io_us),
                static_cast<long long>(it.spt_build_us),
                static_cast<long long>(it.query_eval_us),
                static_cast<long long>(it.udf_us),
                static_cast<long long>(it.pagelog_pages));
  }

  std::printf("\ntpch_retrospect finished OK\n");
  return 0;
}

// Temporal-database style lifetimes from snapshots: an inventory of
// machines reporting their state every snapshot. CollateDataIntoIntervals
// compacts "machine X was in state S" facts into lifetime intervals — the
// record-lifetime representation temporal databases use — and the example
// compares its footprint against the naive CollateData representation
// (the paper's Section 5.3 study, in miniature).
//
// Build & run:  ./examples/intervals_compaction

#include <cstdio>
#include <string>

#include "common/random.h"
#include "rql/rql.h"
#include "sql/database.h"
#include "storage/env.h"

using rql::RqlEngine;
using rql::Status;
using rql::sql::Database;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "error at %s: %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  rql::storage::InMemoryEnv env;
  auto data = Database::Open(&env, "fleet");
  auto meta = Database::Open(&env, "fleet_meta");
  Check(data.status(), "open data");
  Check(meta.status(), "open meta");
  Database* db = data->get();
  RqlEngine rql(db, meta->get());
  Check(rql.EnsureSnapIds(), "SnapIds");

  constexpr int kMachines = 200;
  constexpr int kSnapshots = 80;
  const char* states[] = {"serving", "draining", "repair"};

  Check(db->Exec("CREATE TABLE fleet (machine INTEGER, state TEXT)"),
        "schema");
  for (int m = 0; m < kMachines; ++m) {
    Check(db->Exec("INSERT INTO fleet VALUES (" + std::to_string(m) +
                   ", 'serving')"),
          "seed");
  }

  // Machines change state rarely: long runs of identical snapshots, the
  // best case for the interval representation.
  rql::Random rng(7);
  for (int s = 0; s < kSnapshots; ++s) {
    Check(db->Exec("BEGIN"), "begin");
    for (int m = 0; m < kMachines; ++m) {
      if (rng.Bernoulli(0.03)) {
        Check(db->Exec("UPDATE fleet SET state = '" +
                       std::string(states[rng.Uniform(3)]) +
                       "' WHERE machine = " + std::to_string(m)),
              "flip state");
      }
    }
    Check(rql.CommitWithSnapshot("tick-" + std::to_string(s)).status(),
          "snapshot");
  }

  const char* qq = "SELECT machine, state FROM fleet";
  const char* qs = "SELECT snap_id FROM SnapIds";

  Check(rql.CollateData(qs, qq, "NaiveHistory"), "collate");
  Check(rql.CollateDataIntoIntervals(qs, qq, "Lifetimes"), "intervals");

  auto naive = (*meta)->GetTableStats("NaiveHistory");
  auto compact = (*meta)->GetTableStats("Lifetimes");
  Check(naive.status(), "naive stats");
  Check(compact.status(), "compact stats");

  std::printf("naive CollateData:          %8llu rows  %8.1f KiB\n",
              static_cast<unsigned long long>(naive->rows),
              naive->bytes / 1024.0);
  std::printf("CollateDataIntoIntervals:   %8llu rows  %8.1f KiB  (%.1fx "
              "smaller)\n",
              static_cast<unsigned long long>(compact->rows),
              compact->bytes / 1024.0,
              static_cast<double>(naive->bytes) /
                  static_cast<double>(compact->bytes));

  // The interval table is a regular table: temporal queries are plain SQL.
  auto repair = (*meta)->Query(
      "SELECT machine, start_snapshot, end_snapshot FROM Lifetimes "
      "WHERE state = 'repair' "
      "ORDER BY end_snapshot - start_snapshot DESC LIMIT 5");
  Check(repair.status(), "repair query");
  std::printf("\nlongest repair stints (machine, start, end):\n");
  for (const auto& row : repair->rows) {
    std::printf("  machine %-5s snapshots %s..%s\n",
                row[0].ToString().c_str(), row[1].ToString().c_str(),
                row[2].ToString().c_str());
  }

  // Cross-check: lifetimes must tile each machine's history — for any
  // snapshot, each machine appears in exactly one interval.
  auto tile = (*meta)->Query(
      "SELECT COUNT(*) FROM Lifetimes "
      "WHERE start_snapshot <= 40 AND end_snapshot >= 40");
  Check(tile.status(), "tiling check");
  std::printf("\nintervals covering snapshot 40: %s (expected %d)\n",
              (*tile).rows[0][0].ToString().c_str(), kMachines);

  std::printf("\nintervals_compaction finished OK\n");
  return 0;
}

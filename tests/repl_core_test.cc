// Regression tests for the shell's extracted REPL core (server/repl.h):
// the widths[] out-of-bounds on ragged result rows, the leading-space
// dot-command argument, empty-.meta usage, and the lexer-based
// multi-statement terminator (';' inside string literals and comments
// must keep buffering; trailing comments after ';' must not).

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "rql/rql.h"
#include "server/repl.h"
#include "sql/database.h"
#include "storage/env.h"

namespace rql::server {
namespace {

using sql::Row;
using sql::Value;

// --- FormatTable ------------------------------------------------------------

TEST(FormatTableTest, RowsWiderThanHeaderDoNotOverflowWidths) {
  // The pre-extraction shell sized widths[] to the header arity and then
  // indexed it with each row's cell count: a row with more cells than the
  // header read (and wrote) out of bounds. UDF-driven results routinely
  // produce such rows.
  std::vector<std::string> columns = {"only"};
  std::vector<Row> rows = {
      {Value::Integer(1), Value::Text("extra"), Value::Text("cells")},
      {Value::Integer(2)},
  };
  std::string out = FormatTable(columns, rows);
  EXPECT_NE(out.find("only"), std::string::npos);
  EXPECT_NE(out.find("extra"), std::string::npos);
  EXPECT_NE(out.find("cells"), std::string::npos);
  EXPECT_NE(out.find("(2 rows)"), std::string::npos);
}

TEST(FormatTableTest, RaggedRowsPadToColumnWidth) {
  std::vector<std::string> columns = {"a", "b"};
  std::vector<Row> rows = {
      {Value::Text("longvalue"), Value::Integer(1)},
      {Value::Integer(2)},  // fewer cells than the header
  };
  std::string out = FormatTable(columns, rows);
  EXPECT_NE(out.find("longvalue"), std::string::npos);
  EXPECT_NE(out.find("(2 rows)"), std::string::npos);
}

TEST(FormatTableTest, EmptyResult) {
  std::string out = FormatTable({"x"}, {});
  EXPECT_NE(out.find("(0 rows)"), std::string::npos);
}

// --- ParseDotCommand --------------------------------------------------------

TEST(ParseDotCommandTest, ArgumentIsTrimmed) {
  // std::getline after `iss >> cmd` kept the separating space, so
  // ".snapshot mylabel" used to store the label " mylabel".
  DotCommand cmd = ParseDotCommand(".snapshot mylabel");
  EXPECT_EQ(cmd.name, ".snapshot");
  EXPECT_EQ(cmd.arg, "mylabel");

  cmd = ParseDotCommand(".meta   SELECT 1;  ");
  EXPECT_EQ(cmd.name, ".meta");
  EXPECT_EQ(cmd.arg, "SELECT 1;");
}

TEST(ParseDotCommandTest, MissingArgumentIsEmpty) {
  DotCommand cmd = ParseDotCommand(".meta");
  EXPECT_EQ(cmd.name, ".meta");
  EXPECT_TRUE(cmd.arg.empty());

  cmd = ParseDotCommand(".meta   ");
  EXPECT_EQ(cmd.name, ".meta");
  EXPECT_TRUE(cmd.arg.empty());
}

// --- StatementComplete ------------------------------------------------------

TEST(StatementCompleteTest, PlainTerminator) {
  EXPECT_TRUE(StatementComplete("SELECT 1;"));
  EXPECT_TRUE(StatementComplete("SELECT 1;\n"));
  EXPECT_TRUE(StatementComplete("INSERT INTO t VALUES (1); SELECT 1;"));
  EXPECT_FALSE(StatementComplete("SELECT 1"));
  EXPECT_FALSE(StatementComplete("SELECT 1\n"));
}

TEST(StatementCompleteTest, SemicolonInsideStringLiteralKeepsBuffering) {
  // The old check looked at the last non-space character: "SELECT 'a;"
  // ends in ';' textually, so the half-typed statement executed (and
  // errored) instead of continuing the multi-line prompt.
  EXPECT_FALSE(StatementComplete("SELECT 'a;"));
  EXPECT_FALSE(StatementComplete("SELECT 'a;\n"));
  EXPECT_FALSE(StatementComplete("INSERT INTO t VALUES ('x;"));
  // Once the literal closes and the statement terminates, it executes —
  // with the ';' inside the literal preserved as data.
  EXPECT_TRUE(StatementComplete("SELECT 'a; b';"));
}

TEST(StatementCompleteTest, SemicolonInsideCommentKeepsBuffering) {
  EXPECT_FALSE(StatementComplete("SELECT 1 -- done;\n"));
  EXPECT_FALSE(StatementComplete("SELECT 1 /* ; */"));
  EXPECT_TRUE(StatementComplete("SELECT 1 /* ; */;"));
}

TEST(StatementCompleteTest, CommentAfterTerminatorIsComplete) {
  // A trailing comment after the ';' must not hide the terminator.
  EXPECT_TRUE(StatementComplete("SELECT 1; -- trailing note\n"));
  EXPECT_TRUE(StatementComplete("SELECT 1; /* note */"));
}

TEST(StatementCompleteTest, BlankAndCommentOnlyBuffersIncomplete) {
  EXPECT_FALSE(StatementComplete(""));
  EXPECT_FALSE(StatementComplete("   \n"));
  EXPECT_FALSE(StatementComplete("-- just a comment\n"));
}

TEST(StatementCompleteTest, UnterminatedQuotedIdentifierKeepsBuffering) {
  EXPECT_FALSE(StatementComplete("SELECT \"col;"));
}

// --- the REPL loop over an embedded backend ---------------------------------

struct ShellFixture {
  storage::InMemoryEnv env;
  std::unique_ptr<sql::Database> data;
  std::unique_ptr<sql::Database> meta;
  std::unique_ptr<RqlEngine> engine;
  std::unique_ptr<EmbeddedBackend> backend;
};

ShellFixture MakeShell() {
  ShellFixture f;
  auto data = sql::Database::Open(&f.env, "data");
  auto meta = sql::Database::Open(&f.env, "meta");
  EXPECT_TRUE(data.ok() && meta.ok());
  f.data = std::move(*data);
  f.meta = std::move(*meta);
  f.engine = std::make_unique<RqlEngine>(f.data.get(), f.meta.get());
  EXPECT_TRUE(f.engine->EnsureSnapIds().ok());
  EXPECT_TRUE(f.engine->RegisterUdfs().ok());
  f.backend = std::make_unique<EmbeddedBackend>(f.data.get(), f.meta.get(),
                                                f.engine.get(), "test shell");
  return f;
}

std::string RunScript(ShellFixture* f, const std::string& script) {
  std::istringstream in(script);
  std::ostringstream out;
  RunRepl(in, out, f->backend.get(), false);
  return out.str();
}

TEST(RunReplTest, SnapshotLabelIsStoredWithoutLeadingSpace) {
  ShellFixture f = MakeShell();
  std::string out = RunScript(&f,
                        "CREATE TABLE t (k INTEGER);\n"
                        ".snapshot mylabel\n"
                        ".snapshots\n");
  EXPECT_NE(out.find("declared snapshot 1"), std::string::npos) << out;
  // The label column must hold "mylabel", not " mylabel".
  auto rows = f.meta->Query(
      "SELECT label FROM SnapIds WHERE snap_id = 1");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0].ToString(), "mylabel");
}

TEST(RunReplTest, EmptyMetaPrintsUsageInsteadOfExecuting) {
  ShellFixture f = MakeShell();
  std::string out = RunScript(&f, ".meta\n");
  EXPECT_NE(out.find("usage: .meta <sql>"), std::string::npos) << out;
  EXPECT_EQ(out.find("error:"), std::string::npos) << out;
}

TEST(RunReplTest, MultiLineStatementWithSemicolonInLiteral) {
  ShellFixture f = MakeShell();
  std::string out = RunScript(&f,
                        "CREATE TABLE s (txt TEXT);\n"
                        "INSERT INTO s VALUES ('a;\n"
                        "b');\n"
                        "SELECT txt FROM s;\n");
  // The INSERT spans two input lines; its value keeps the embedded ';'
  // and newline.
  EXPECT_NE(out.find("a;"), std::string::npos) << out;
  EXPECT_NE(out.find("(1 row)"), std::string::npos) << out;
  EXPECT_EQ(out.find("error:"), std::string::npos) << out;
}

TEST(RunReplTest, UdfFormRunsThroughMeta) {
  ShellFixture f = MakeShell();
  std::string out = RunScript(&f,
                        "CREATE TABLE t (k INTEGER, v INTEGER);\n"
                        "INSERT INTO t VALUES (1, 10);\n"
                        ".snapshot s1\n"
                        "UPDATE t SET v = 20;\n"
                        ".snapshot s2\n"
                        ".meta SELECT CollateData(snap_id, 'SELECT "
                        "current_snapshot(), v FROM t', 'Out') FROM "
                        "SnapIds;\n"
                        ".meta SELECT * FROM Out;\n"
                        ".stats\n");
  EXPECT_NE(out.find("(2 rows)"), std::string::npos) << out;
  EXPECT_NE(out.find("iterations"), std::string::npos) << out;
  EXPECT_EQ(out.find("error:"), std::string::npos) << out;
}

}  // namespace
}  // namespace rql::server

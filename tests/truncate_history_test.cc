// Tests for snapshot retention (TruncateHistory): dropped snapshots become
// unreachable, kept snapshots stay byte-exact, archive space is reclaimed,
// new history continues cleanly, the swap survives crashes, and the whole
// flow works through the SQL layer.

#include <gtest/gtest.h>

#include <map>

#include "retro/snapshot_store.h"
#include "sql/database.h"

namespace rql::retro {
namespace {

using storage::Page;
using storage::PageId;

Page TaggedPage(uint64_t tag) {
  Page p;
  p.Zero();
  p.WriteU64(0, tag);
  return p;
}

class TruncateHistoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto store = SnapshotStore::Open(&env_, "t");
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    // Build 10 snapshots over 4 pages, each snapshot overwriting all.
    for (int i = 0; i < 4; ++i) {
      auto id = store_->AllocatePage();
      ASSERT_TRUE(id.ok());
      pages_.push_back(*id);
    }
    for (uint64_t snap = 1; snap <= 10; ++snap) {
      for (size_t p = 0; p < pages_.size(); ++p) {
        ASSERT_TRUE(
            store_->WritePage(pages_[p], TaggedPage(snap * 100 + p)).ok());
      }
      ASSERT_TRUE(store_->DeclareSnapshot().ok());
    }
    // One more epoch of writes so every snapshot's state is archived.
    for (size_t p = 0; p < pages_.size(); ++p) {
      ASSERT_TRUE(store_->WritePage(pages_[p], TaggedPage(9900 + p)).ok());
    }
  }

  void VerifySnapshot(SnapshotId snap) {
    auto view = store_->OpenSnapshot(snap);
    ASSERT_TRUE(view.ok()) << "snapshot " << snap << ": "
                           << view.status().ToString();
    for (size_t p = 0; p < pages_.size(); ++p) {
      Page page;
      ASSERT_TRUE((*view)->ReadPage(pages_[p], &page).ok());
      EXPECT_EQ(page.ReadU64(0), snap * 100 + p) << "snapshot " << snap;
    }
  }

  storage::InMemoryEnv env_;
  std::unique_ptr<SnapshotStore> store_;
  std::vector<PageId> pages_;
};

TEST_F(TruncateHistoryTest, DropsOldKeepsRecent) {
  uint64_t before = store_->pagelog()->SizeBytes();
  ASSERT_TRUE(store_->TruncateHistory(6).ok());
  EXPECT_EQ(store_->earliest_snapshot(), 6u);
  EXPECT_EQ(store_->latest_snapshot(), 10u);
  // Dropped snapshots are gone.
  for (SnapshotId snap = 1; snap <= 5; ++snap) {
    EXPECT_FALSE(store_->OpenSnapshot(snap).ok()) << snap;
  }
  // Kept snapshots are byte-exact.
  for (SnapshotId snap = 6; snap <= 10; ++snap) VerifySnapshot(snap);
  // Space was reclaimed (5 of 10 epochs dropped).
  EXPECT_LT(store_->pagelog()->SizeBytes(), before * 2 / 3);
}

TEST_F(TruncateHistoryTest, HistoryContinuesAfterTruncation) {
  ASSERT_TRUE(store_->TruncateHistory(8).ok());
  // Declare more snapshots and verify COW still works.
  for (uint64_t snap = 11; snap <= 13; ++snap) {
    for (size_t p = 0; p < pages_.size(); ++p) {
      ASSERT_TRUE(
          store_->WritePage(pages_[p], TaggedPage(snap * 100 + p)).ok());
    }
    ASSERT_TRUE(store_->DeclareSnapshot().ok());
  }
  for (size_t p = 0; p < pages_.size(); ++p) {
    ASSERT_TRUE(store_->WritePage(pages_[p], TaggedPage(7700 + p)).ok());
  }
  for (SnapshotId snap = 8; snap <= 13; ++snap) VerifySnapshot(snap);
}

TEST_F(TruncateHistoryTest, SurvivesReopen) {
  ASSERT_TRUE(store_->TruncateHistory(7).ok());
  store_.reset();
  auto reopened = SnapshotStore::Open(&env_, "t");
  ASSERT_TRUE(reopened.ok());
  store_ = std::move(*reopened);
  EXPECT_EQ(store_->earliest_snapshot(), 7u);
  EXPECT_FALSE(store_->OpenSnapshot(6).ok());
  for (SnapshotId snap = 7; snap <= 10; ++snap) VerifySnapshot(snap);
}

TEST_F(TruncateHistoryTest, IdempotentAndBounded) {
  ASSERT_TRUE(store_->TruncateHistory(5).ok());
  ASSERT_TRUE(store_->TruncateHistory(5).ok());  // no-op
  ASSERT_TRUE(store_->TruncateHistory(3).ok());  // older than earliest: no-op
  EXPECT_EQ(store_->earliest_snapshot(), 5u);
  EXPECT_FALSE(store_->TruncateHistory(99).ok());  // beyond history
  ASSERT_TRUE(store_->Begin().ok());
  EXPECT_FALSE(store_->TruncateHistory(7).ok());  // inside a transaction
  ASSERT_TRUE(store_->Rollback().ok());
}

TEST_F(TruncateHistoryTest, TruncateEverything) {
  // keep_from == latest + 1 drops all snapshots.
  ASSERT_TRUE(store_->TruncateHistory(11).ok());
  for (SnapshotId snap = 1; snap <= 10; ++snap) {
    EXPECT_FALSE(store_->OpenSnapshot(snap).ok());
  }
  // A fresh snapshot works.
  auto snap = store_->DeclareSnapshot();
  ASSERT_TRUE(snap.ok());
  ASSERT_TRUE(store_->WritePage(pages_[0], TaggedPage(1)).ok());
  auto view = store_->OpenSnapshot(*snap);
  ASSERT_TRUE(view.ok());
  Page page;
  ASSERT_TRUE((*view)->ReadPage(pages_[0], &page).ok());
  EXPECT_EQ(page.ReadU64(0), 9900u);  // the pre-truncation content
}

TEST_F(TruncateHistoryTest, DiffModeRebasedChainsStayCorrect) {
  // Rebuild the fixture in diff mode.
  SnapshotStoreOptions options;
  options.pagelog_mode = PagelogMode::kDiff;
  auto opened = SnapshotStore::Open(&env_, "diff", options);
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<SnapshotStore> store = std::move(*opened);
  auto id = store->AllocatePage();
  ASSERT_TRUE(id.ok());
  Page page = TaggedPage(0);
  ASSERT_TRUE(store->WritePage(*id, page).ok());
  for (uint64_t snap = 1; snap <= 20; ++snap) {
    ASSERT_TRUE(store->DeclareSnapshot().ok());
    page.WriteU64(8 * (snap % 16), snap);
    ASSERT_TRUE(store->WritePage(*id, page).ok());
  }
  ASSERT_TRUE(store->TruncateHistory(12).ok());
  EXPECT_GT(store->pagelog()->diff_record_count(), 0u);
  // Kept snapshots reconstruct exactly: replay the mutation sequence.
  Page expected = TaggedPage(0);
  for (uint64_t snap = 1; snap <= 20; ++snap) {
    if (snap >= 12) {
      auto view = store->OpenSnapshot(static_cast<SnapshotId>(snap));
      ASSERT_TRUE(view.ok());
      Page read;
      ASSERT_TRUE((*view)->ReadPage(*id, &read).ok());
      EXPECT_EQ(std::memcmp(read.data, expected.data, storage::kPageSize), 0)
          << "snapshot " << snap;
    }
    expected.WriteU64(8 * (snap % 16), snap);
  }
}

TEST_F(TruncateHistoryTest, CrashBeforeMarkerDiscardsCompaction) {
  // Simulate a crash after partial compaction: leftover .compact files
  // without the commit marker must be discarded and the full history kept.
  {
    auto file = env_.OpenFile("t.pagelog.compact");
    ASSERT_TRUE(file.ok());
    uint64_t off;
    ASSERT_TRUE((*file)->Append(7, "garbage", &off).ok());
  }
  store_.reset();
  auto reopened = SnapshotStore::Open(&env_, "t");
  ASSERT_TRUE(reopened.ok());
  store_ = std::move(*reopened);
  EXPECT_FALSE(env_.FileExists("t.pagelog.compact"));
  for (SnapshotId snap = 1; snap <= 10; ++snap) VerifySnapshot(snap);
}

TEST_F(TruncateHistoryTest, CrashAfterMarkerCompletesSwap) {
  // Run a real truncation but "crash" right after the commit marker: clone
  // the env at that point by re-creating the situation manually.
  ASSERT_TRUE(store_->TruncateHistory(6).ok());
  // Now fabricate the post-marker crash state: move the logs back to
  // .compact and recreate the marker, as if the renames never happened.
  ASSERT_TRUE(env_.RenameFile("t.pagelog", "t.pagelog.compact").ok());
  ASSERT_TRUE(env_.RenameFile("t.maplog", "t.maplog.compact").ok());
  {
    auto marker = env_.OpenFile("t.compact.commit");
    ASSERT_TRUE(marker.ok());
    uint64_t off;
    ASSERT_TRUE((*marker)->Append(2, "ok", &off).ok());
  }
  store_.reset();
  auto reopened = SnapshotStore::Open(&env_, "t");
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  store_ = std::move(*reopened);
  EXPECT_FALSE(env_.FileExists("t.compact.commit"));
  EXPECT_EQ(store_->earliest_snapshot(), 6u);
  for (SnapshotId snap = 6; snap <= 10; ++snap) VerifySnapshot(snap);
}

TEST(TruncateHistorySqlTest, WorksThroughTheDatabaseLayer) {
  storage::InMemoryEnv env;
  auto db = sql::Database::Open(&env, "d");
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Exec("CREATE TABLE t (v INTEGER)").ok());
  for (int snap = 1; snap <= 6; ++snap) {
    ASSERT_TRUE((*db)
                    ->Exec("BEGIN; INSERT INTO t VALUES (" +
                           std::to_string(snap) + "); COMMIT WITH SNAPSHOT;")
                    .ok());
  }
  ASSERT_TRUE((*db)->store()->TruncateHistory(4).ok());
  EXPECT_FALSE((*db)->Query("SELECT AS OF 2 * FROM t").ok());
  auto kept = (*db)->QueryScalar("SELECT AS OF 4 COUNT(*) FROM t");
  ASSERT_TRUE(kept.ok()) << kept.status().ToString();
  EXPECT_EQ(kept->integer(), 4);
  auto current = (*db)->QueryScalar("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(current->integer(), 6);
}

}  // namespace
}  // namespace rql::retro

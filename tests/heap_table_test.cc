#include "sql/heap_table.h"

#include <gtest/gtest.h>

#include <set>

#include "retro/snapshot_store.h"

namespace rql::sql {
namespace {

class HeapTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto store = retro::SnapshotStore::Open(&env_, "t");
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    auto root = HeapTable::Create(store_.get());
    ASSERT_TRUE(root.ok());
    root_ = *root;
  }

  std::vector<std::string> ScanAll(storage::PageReader* reader = nullptr) {
    std::vector<std::string> records;
    auto it = HeapTable::Scan(reader ? reader : store_.get(), root_);
    for (; it.Valid(); it.Next()) {
      records.emplace_back(it.record());
    }
    EXPECT_TRUE(it.status().ok()) << it.status().ToString();
    return records;
  }

  storage::InMemoryEnv env_;
  std::unique_ptr<retro::SnapshotStore> store_;
  storage::PageId root_ = storage::kInvalidPageId;
};

TEST_F(HeapTableTest, InsertAndScan) {
  HeapTable table(store_.get(), root_);
  for (int i = 0; i < 10; ++i) {
    auto rid = table.Insert("rec" + std::to_string(i));
    ASSERT_TRUE(rid.ok());
  }
  auto records = ScanAll();
  ASSERT_EQ(records.size(), 10u);
  EXPECT_EQ(records[0], "rec0");
  EXPECT_EQ(records[9], "rec9");
}

TEST_F(HeapTableTest, GetByRid) {
  HeapTable table(store_.get(), root_);
  auto rid = table.Insert("hello");
  ASSERT_TRUE(rid.ok());
  auto rec = HeapTable::Get(store_.get(), *rid);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(*rec, "hello");
}

TEST_F(HeapTableTest, DeleteHidesRecord) {
  HeapTable table(store_.get(), root_);
  auto a = table.Insert("a");
  auto b = table.Insert("b");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(table.Delete(*a).ok());
  auto records = ScanAll();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "b");
  EXPECT_FALSE(HeapTable::Get(store_.get(), *a).ok());
  EXPECT_FALSE(table.Delete(*a).ok());  // double delete
}

TEST_F(HeapTableTest, SpansManyPages) {
  HeapTable table(store_.get(), root_);
  std::string record(500, 'x');
  for (int i = 0; i < 100; ++i) {
    record[0] = static_cast<char>('a' + i % 26);
    ASSERT_TRUE(table.Insert(record).ok());
  }
  auto pages = HeapTable::CountPages(store_.get(), root_);
  ASSERT_TRUE(pages.ok());
  EXPECT_GT(*pages, 10u);
  EXPECT_EQ(ScanAll().size(), 100u);
}

TEST_F(HeapTableTest, EmptiedPagesAreRecycled) {
  HeapTable table(store_.get(), root_);
  std::string record(500, 'x');
  std::vector<Rid> rids;
  for (int i = 0; i < 100; ++i) {
    auto rid = table.Insert(record);
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  uint32_t before = store_->page_store()->allocated_pages();
  // Delete everything, then reinsert the same volume: the table should not
  // net-grow the database (rotating TPC-H refresh pattern).
  for (Rid rid : rids) ASSERT_TRUE(table.Delete(rid).ok());
  auto pages_after_delete = HeapTable::CountPages(store_.get(), root_);
  ASSERT_TRUE(pages_after_delete.ok());
  EXPECT_EQ(*pages_after_delete, 1u);  // only the root remains
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(table.Insert(record).ok());
  }
  EXPECT_LE(store_->page_store()->allocated_pages(), before + 1);
  EXPECT_EQ(ScanAll().size(), 100u);
}

TEST_F(HeapTableTest, DeadSlotSpaceIsCompacted) {
  HeapTable table(store_.get(), root_);
  // Fill one page, delete half, and verify new records still fit without
  // chaining a second page.
  std::string record(300, 'y');
  std::vector<Rid> rids;
  for (int i = 0; i < 13; ++i) {  // ~3900 bytes + slots: page nearly full
    auto rid = table.Insert(record);
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(table.Delete(rids[i]).ok());
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(table.Insert(record).ok());
  auto pages = HeapTable::CountPages(store_.get(), root_);
  ASSERT_TRUE(pages.ok());
  EXPECT_EQ(*pages, 1u);
}

TEST_F(HeapTableTest, UpdateInPlaceAndMoving) {
  HeapTable table(store_.get(), root_);
  auto rid = table.Insert("0123456789");
  ASSERT_TRUE(rid.ok());
  // Same-size update stays in place.
  auto same = table.Update(*rid, "abcdefghij");
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(*same, *rid);
  // A larger update may move.
  std::string big(100, 'z');
  auto moved = table.Update(*same, big);
  ASSERT_TRUE(moved.ok());
  auto rec = HeapTable::Get(store_.get(), *moved);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(*rec, big);
}

TEST_F(HeapTableTest, RejectsOversizedRecord) {
  HeapTable table(store_.get(), root_);
  std::string huge(storage::kPageSize, 'x');
  EXPECT_FALSE(table.Insert(huge).ok());
}

TEST_F(HeapTableTest, DropFreesAllPages) {
  HeapTable table(store_.get(), root_);
  std::string record(500, 'x');
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(table.Insert(record).ok());
  ASSERT_TRUE(table.Drop().ok());
  EXPECT_EQ(store_->page_store()->allocated_pages(), 0u);
}

TEST_F(HeapTableTest, SnapshotScanSeesOldRecords) {
  HeapTable table(store_.get(), root_);
  ASSERT_TRUE(table.Insert("old1").ok());
  ASSERT_TRUE(table.Insert("old2").ok());
  auto snap = store_->DeclareSnapshot();
  ASSERT_TRUE(snap.ok());

  auto it = HeapTable::Scan(store_.get(), root_);
  std::vector<Rid> rids;
  for (; it.Valid(); it.Next()) rids.push_back(it.rid());
  ASSERT_TRUE(table.Delete(rids[0]).ok());
  ASSERT_TRUE(table.Insert("new").ok());

  auto view = store_->OpenSnapshot(*snap);
  ASSERT_TRUE(view.ok());
  auto old_records = ScanAll(view->get());
  ASSERT_EQ(old_records.size(), 2u);
  EXPECT_EQ(old_records[0], "old1");
  EXPECT_EQ(old_records[1], "old2");

  auto current = ScanAll();
  std::set<std::string> current_set(current.begin(), current.end());
  EXPECT_EQ(current_set, (std::set<std::string>{"old2", "new"}));
}

TEST_F(HeapTableTest, ScanOfEmptyTable) {
  EXPECT_TRUE(ScanAll().empty());
}

}  // namespace
}  // namespace rql::sql

// RQL engine error paths: a malformed Qq must surface before the first
// iteration touches the result table, an empty Qs set must be handled
// cleanly, and a mid-run iteration failure must abort without leaking a
// partial result table or its transient covering index.

#include <gtest/gtest.h>

#include <string>

#include "rql/rql.h"
#include "sql/database.h"
#include "storage/env.h"

namespace rql {
namespace {

using sql::Value;

class RqlErrorPathsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto data = sql::Database::Open(&env_, "data");
    auto meta = sql::Database::Open(&env_, "meta");
    ASSERT_TRUE(data.ok() && meta.ok());
    data_ = std::move(*data);
    meta_ = std::move(*meta);
    engine_ = std::make_unique<RqlEngine>(data_.get(), meta_.get());
    ASSERT_TRUE(engine_->EnsureSnapIds().ok());
    Ok(data_.get(), "CREATE TABLE t (k INTEGER, v TEXT)");
    for (int snap = 1; snap <= 3; ++snap) {
      Ok(data_.get(), "BEGIN; INSERT INTO t VALUES (" +
                          std::to_string(snap) + ", 'v" +
                          std::to_string(snap) + "');");
      auto s = engine_->CommitWithSnapshot("ts" + std::to_string(snap));
      ASSERT_TRUE(s.ok()) << s.status().ToString();
    }
  }

  void Ok(sql::Database* db, const std::string& sql) {
    Status s = db->Exec(sql);
    ASSERT_TRUE(s.ok()) << sql << " -> " << s.ToString();
  }

  bool TableExists(const std::string& name) {
    return meta_->catalog()->data().FindTable(name) != nullptr;
  }

  bool IndexExists(const std::string& name) {
    return meta_->catalog()->data().FindIndex(name) != nullptr;
  }

  storage::InMemoryEnv env_;
  std::unique_ptr<sql::Database> data_;
  std::unique_ptr<sql::Database> meta_;
  std::unique_ptr<RqlEngine> engine_;
};

TEST_F(RqlErrorPathsTest, MalformedQqSurfacesBeforeAnyIteration) {
  // A pre-existing result table must survive: validation happens before
  // PrepareResultTable drops anything.
  Ok(meta_.get(), "CREATE TABLE Result (marker TEXT)");
  Ok(meta_.get(), "INSERT INTO Result VALUES ('keep me')");

  Status s = engine_->CollateData("SELECT snap_id FROM SnapIds",
                                  "SELEKT broken FROM", "Result");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(engine_->last_run_stats().iterations.empty());

  auto r = meta_->Query("SELECT marker FROM Result");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].text(), "keep me");
}

TEST_F(RqlErrorPathsTest, EmptyQqIsRejectedUpfront) {
  Status s = engine_->CollateData("SELECT snap_id FROM SnapIds", "   ",
                                  "Result");
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(TableExists("Result"));
}

TEST_F(RqlErrorPathsTest, MalformedQsLeavesResultTableIntact) {
  Ok(meta_.get(), "CREATE TABLE Result (marker TEXT)");
  Ok(meta_.get(), "INSERT INTO Result VALUES ('keep me')");
  Status s = engine_->CollateData("SELECT nope FROM NoSuchTable",
                                  "SELECT k FROM t", "Result");
  EXPECT_FALSE(s.ok());
  auto r = meta_->Query("SELECT marker FROM Result");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 1u);
}

TEST_F(RqlErrorPathsTest, EmptyQsSetSucceedsWithDefinedState) {
  Status s = engine_->CollateData(
      "SELECT snap_id FROM SnapIds WHERE snap_id > 100",
      "SELECT k, current_snapshot() AS sid FROM t", "Result");
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(engine_->last_run_stats().iterations.empty());
  // No iteration appended a row, so the (replaced) result table was never
  // recreated.
  EXPECT_FALSE(TableExists("Result"));
}

TEST_F(RqlErrorPathsTest, MidRunFailureLeavesNoPartialResults) {
  data_->RegisterFunction(
      "fail_on_snap2", 1, 1,
      [](const std::vector<Value>& args) -> Result<Value> {
        if (args[0].AsInt() == 2) {
          return Status::IoError("injected iteration failure");
        }
        return Value::Integer(args[0].AsInt());
      });

  // AggregateDataInTable creates both the result table and its transient
  // <table>_rql_idx covering index mid-run; iteration 2 then fails.
  Status s = engine_->AggregateDataInTable(
      "SELECT snap_id FROM SnapIds ORDER BY snap_id",
      "SELECT k, fail_on_snap2(current_snapshot()) AS mx FROM t", "Result",
      std::string("(mx,max)"));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError) << s.ToString();

  // The partial result table and its covering index were discarded.
  EXPECT_FALSE(TableExists("Result"));
  EXPECT_FALSE(IndexExists("Result_rql_idx"));
  // The metadata database is out of the per-iteration transaction and
  // fully usable.
  EXPECT_FALSE(meta_->store()->in_transaction());
  Ok(meta_.get(), "BEGIN; CREATE TABLE after (x INTEGER); COMMIT");
  EXPECT_TRUE(TableExists("after"));

  // A rerun without the failure succeeds and recreates the table.
  Status ok = engine_->AggregateDataInTable(
      "SELECT snap_id FROM SnapIds ORDER BY snap_id",
      "SELECT k, current_snapshot() AS mx FROM t", "Result",
      std::string("(mx,max)"));
  ASSERT_TRUE(ok.ok()) << ok.ToString();
  EXPECT_TRUE(TableExists("Result"));
}

TEST_F(RqlErrorPathsTest, MidRunFailureInCollateDropsCreatedTable) {
  data_->RegisterFunction(
      "fail_on_snap3", 1, 1,
      [](const std::vector<Value>& args) -> Result<Value> {
        if (args[0].AsInt() == 3) {
          return Status::IoError("injected iteration failure");
        }
        return Value::Integer(args[0].AsInt());
      });
  Status s = engine_->CollateData(
      "SELECT snap_id FROM SnapIds ORDER BY snap_id",
      "SELECT k, fail_on_snap3(current_snapshot()) AS sid FROM t", "Result");
  EXPECT_FALSE(s.ok());
  // Iterations 1 and 2 had appended rows; the failure discarded them all.
  EXPECT_FALSE(TableExists("Result"));
}

TEST_F(RqlErrorPathsTest, MemoizeWithoutMemoTableIsRejected) {
  engine_->mutable_options()->memoize_iterations = true;  // memo left null
  Status s = engine_->CollateData("SELECT snap_id FROM SnapIds",
                                  "SELECT k FROM t", "Result");
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_FALSE(TableExists("Result"));
  EXPECT_TRUE(engine_->last_run_stats().iterations.empty());
}

TEST_F(RqlErrorPathsTest, MemoizeIncompatibleWithColdCachePerIteration) {
  // A memo-replayed iteration reads nothing, so the all-cold baseline that
  // cold_cache_per_iteration defines would silently not be measured.
  auto memo = retro::MemoTable::Open(&env_, "memo");
  ASSERT_TRUE(memo.ok()) << memo.status().ToString();
  engine_->mutable_options()->memoize_iterations = true;
  engine_->mutable_options()->memo = memo->get();
  engine_->mutable_options()->cold_cache_per_iteration = true;
  Status s = engine_->CollateData("SELECT snap_id FROM SnapIds",
                                  "SELECT k FROM t", "Result");
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_FALSE(TableExists("Result"));
  // Validation fires before any iteration: the memo stayed empty.
  EXPECT_EQ((*memo)->entry_count(), 0u);
}

}  // namespace
}  // namespace rql

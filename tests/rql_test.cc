#include "rql/rql.h"

#include <gtest/gtest.h>

#include <map>

namespace rql {
namespace {

using sql::Row;
using sql::Value;

/// Builds the paper's LoggedIn example (Figures 1-3): three snapshots of a
/// login table.
class RqlLoggedInTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto data = sql::Database::Open(&env_, "data");
    auto meta = sql::Database::Open(&env_, "meta");
    ASSERT_TRUE(data.ok() && meta.ok());
    data_ = std::move(*data);
    meta_ = std::move(*meta);
    engine_ = std::make_unique<RqlEngine>(data_.get(), meta_.get());
    ASSERT_TRUE(engine_->EnsureSnapIds().ok());

    Ok(data_.get(),
       "CREATE TABLE LoggedIn (l_userid TEXT, l_time TEXT, l_country TEXT)");
    Ok(data_.get(),
       "INSERT INTO LoggedIn VALUES "
       "('UserA', '2008-11-09 13:23:44', 'USA'), "
       "('UserB', '2008-11-09 15:45:21', 'UK'), "
       "('UserC', '2008-11-09 15:45:21', 'USA')");
    // Snapshot 1.
    auto s1 = engine_->CommitWithSnapshot("2008-11-09 23:59:59");
    ASSERT_TRUE(s1.ok());
    EXPECT_EQ(*s1, 1u);
    // Snapshot 2: UserA logs out (deleted by the declaring transaction).
    Ok(data_.get(), "BEGIN; DELETE FROM LoggedIn WHERE l_userid = 'UserA';");
    auto s2 = engine_->CommitWithSnapshot("2008-11-10 23:59:59");
    ASSERT_TRUE(s2.ok());
    // Snapshot 3: UserD logs in.
    Ok(data_.get(),
       "BEGIN; INSERT INTO LoggedIn (l_userid, l_time, l_country) VALUES "
       "('UserD', '2008-11-11 10:08:04', 'UK');");
    auto s3 = engine_->CommitWithSnapshot("2008-11-11 23:59:59");
    ASSERT_TRUE(s3.ok());
  }

  void Ok(sql::Database* db, const std::string& sql) {
    Status s = db->Exec(sql);
    ASSERT_TRUE(s.ok()) << sql << " -> " << s.ToString();
  }

  sql::QueryResult Q(sql::Database* db, const std::string& sql) {
    auto r = db->Query(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(*r) : sql::QueryResult{};
  }

  storage::InMemoryEnv env_;
  std::unique_ptr<sql::Database> data_;
  std::unique_ptr<sql::Database> meta_;
  std::unique_ptr<RqlEngine> engine_;
};

TEST_F(RqlLoggedInTest, SnapIdsIsPopulated) {
  sql::QueryResult r =
      Q(meta_.get(), "SELECT snap_id, snap_ts FROM SnapIds ORDER BY snap_id");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].integer(), 1);
  EXPECT_EQ(r.rows[2][1].text(), "2008-11-11 23:59:59");
}

TEST_F(RqlLoggedInTest, CollateDataCollectsUsersPerSnapshot) {
  // The paper's first example: all user ids with the snapshot they appear
  // in.
  Status s = engine_->CollateData(
      "SELECT snap_id FROM SnapIds",
      "SELECT DISTINCT l_userid, current_snapshot() AS sid FROM LoggedIn",
      "Result");
  ASSERT_TRUE(s.ok()) << s.ToString();

  sql::QueryResult r =
      Q(meta_.get(), "SELECT l_userid, sid FROM Result ORDER BY sid, l_userid");
  // S1: A,B,C  S2: B,C  S3: B,C,D  -> 8 rows.
  ASSERT_EQ(r.rows.size(), 8u);
  std::multimap<int64_t, std::string> expected = {
      {1, "UserA"}, {1, "UserB"}, {1, "UserC"}, {2, "UserB"},
      {2, "UserC"}, {3, "UserB"}, {3, "UserC"}, {3, "UserD"}};
  auto it = expected.begin();
  for (const Row& row : r.rows) {
    EXPECT_EQ(row[1].integer(), it->first);
    EXPECT_EQ(row[0].text(), it->second);
    ++it;
  }
  // Three iterations ran.
  EXPECT_EQ(engine_->last_run_stats().iterations.size(), 3u);
}

TEST_F(RqlLoggedInTest, AggregateDataInVariableCountsSnapshots) {
  // Count the number of snapshots in which UserB is logged in (paper §2.2).
  Status s = engine_->AggregateDataInVariable(
      "SELECT snap_id FROM SnapIds",
      "SELECT DISTINCT 1 FROM LoggedIn WHERE l_userid = 'UserB'",
      "Result", "sum");
  ASSERT_TRUE(s.ok()) << s.ToString();
  sql::QueryResult r = Q(meta_.get(), "SELECT * FROM Result");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].integer(), 3);
}

TEST_F(RqlLoggedInTest, AggregateDataInVariableFirstOccurrence) {
  // First snapshot in which UserD appears (paper §2.2, "min").
  Status s = engine_->AggregateDataInVariable(
      "SELECT snap_id FROM SnapIds",
      "SELECT DISTINCT current_snapshot() FROM LoggedIn "
      "WHERE l_userid = 'UserD'",
      "Result", "min");
  ASSERT_TRUE(s.ok()) << s.ToString();
  sql::QueryResult r = Q(meta_.get(), "SELECT * FROM Result");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].integer(), 3);
}

TEST_F(RqlLoggedInTest, AggregateDataInVariableAvg) {
  // Average number of logged-in users per snapshot: (3 + 2 + 3) / 3.
  Status s = engine_->AggregateDataInVariable(
      "SELECT snap_id FROM SnapIds",
      "SELECT COUNT(*) AS c FROM LoggedIn", "Result", "avg");
  ASSERT_TRUE(s.ok()) << s.ToString();
  sql::QueryResult r = Q(meta_.get(), "SELECT * FROM Result");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][0].real(), 8.0 / 3.0);
}

TEST_F(RqlLoggedInTest, AggregateDataInTableFirstLoginPerUser) {
  // Paper §2.3: first time each user logged in.
  Status s = engine_->AggregateDataInTable(
      "SELECT snap_id FROM SnapIds",
      "SELECT DISTINCT l_userid, l_time FROM LoggedIn", "Result",
      "(l_time,min)");
  ASSERT_TRUE(s.ok()) << s.ToString();
  sql::QueryResult r = Q(
      meta_.get(), "SELECT l_userid, l_time FROM Result ORDER BY l_userid");
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(r.rows[0][0].text(), "UserA");
  EXPECT_EQ(r.rows[3][0].text(), "UserD");
  EXPECT_EQ(r.rows[3][1].text(), "2008-11-11 10:08:04");
}

TEST_F(RqlLoggedInTest, AggregateDataInTableMaxSimultaneousPerCountry) {
  // Paper §2.3: per country, the maximum number of simultaneously
  // logged-in users.
  Status s = engine_->AggregateDataInTable(
      "SELECT snap_id FROM SnapIds",
      "SELECT l_country, COUNT(*) AS c FROM LoggedIn GROUP BY l_country",
      "Result", "(c,max)");
  ASSERT_TRUE(s.ok()) << s.ToString();
  sql::QueryResult r =
      Q(meta_.get(), "SELECT l_country, c FROM Result ORDER BY l_country");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].text(), "UK");   // max 2 (B, D in S3)
  EXPECT_EQ(r.rows[0][1].integer(), 2);
  EXPECT_EQ(r.rows[1][0].text(), "USA");  // max 2 (A, C in S1)
  EXPECT_EQ(r.rows[1][1].integer(), 2);
}

TEST_F(RqlLoggedInTest, CollateDataIntoIntervalsLifetimes) {
  // Paper §2.4: the interval during which each user was logged in.
  Status s = engine_->CollateDataIntoIntervals(
      "SELECT snap_id FROM SnapIds",
      "SELECT l_userid FROM LoggedIn", "Result");
  ASSERT_TRUE(s.ok()) << s.ToString();
  sql::QueryResult r = Q(
      meta_.get(),
      "SELECT l_userid, start_snapshot, end_snapshot FROM Result "
      "ORDER BY l_userid");
  ASSERT_EQ(r.rows.size(), 4u);
  // UserA: [1,1]; UserB: [1,3]; UserC: [1,3]; UserD: [3,3].
  EXPECT_EQ(r.rows[0][0].text(), "UserA");
  EXPECT_EQ(r.rows[0][1].integer(), 1);
  EXPECT_EQ(r.rows[0][2].integer(), 1);
  EXPECT_EQ(r.rows[1][0].text(), "UserB");
  EXPECT_EQ(r.rows[1][1].integer(), 1);
  EXPECT_EQ(r.rows[1][2].integer(), 3);
  EXPECT_EQ(r.rows[3][0].text(), "UserD");
  EXPECT_EQ(r.rows[3][1].integer(), 3);
  EXPECT_EQ(r.rows[3][2].integer(), 3);
}

TEST_F(RqlLoggedInTest, IntervalsReopenAfterGap) {
  // A record that disappears and reappears gets two lifetime intervals.
  Ok(data_.get(), "BEGIN; DELETE FROM LoggedIn WHERE l_userid = 'UserB';");
  ASSERT_TRUE(engine_->CommitWithSnapshot("ts4").ok());  // S4: no UserB
  Ok(data_.get(),
     "BEGIN; INSERT INTO LoggedIn VALUES ('UserB', 't', 'UK');");
  ASSERT_TRUE(engine_->CommitWithSnapshot("ts5").ok());  // S5: UserB back

  Status s = engine_->CollateDataIntoIntervals(
      "SELECT snap_id FROM SnapIds",
      "SELECT l_userid FROM LoggedIn", "Result");
  ASSERT_TRUE(s.ok()) << s.ToString();
  sql::QueryResult r = Q(
      meta_.get(),
      "SELECT start_snapshot, end_snapshot FROM Result "
      "WHERE l_userid = 'UserB' ORDER BY start_snapshot");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].integer(), 1);
  EXPECT_EQ(r.rows[0][1].integer(), 3);
  EXPECT_EQ(r.rows[1][0].integer(), 5);
  EXPECT_EQ(r.rows[1][1].integer(), 5);
}

TEST_F(RqlLoggedInTest, QsCanSelectSubsetsAndSkips) {
  // Qs is ordinary SQL: restrict to snapshots 2..3.
  Status s = engine_->CollateData(
      "SELECT snap_id FROM SnapIds WHERE snap_id >= 2",
      "SELECT DISTINCT l_userid, current_snapshot() AS sid FROM LoggedIn",
      "Result");
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(engine_->last_run_stats().iterations.size(), 2u);
  sql::QueryResult r = Q(meta_.get(), "SELECT COUNT(*) FROM Result");
  EXPECT_EQ(r.rows[0][0].integer(), 5);  // 2 + 3 users
}

TEST_F(RqlLoggedInTest, UdfFormMatchesPaperSyntax) {
  // The SQL-embedded form of Section 3.
  ASSERT_TRUE(engine_->RegisterUdfs().ok());
  Status s = meta_->Exec(
      "SELECT CollateData(snap_id, "
      "'SELECT DISTINCT l_userid, current_snapshot() AS sid FROM LoggedIn', "
      "'Result') FROM SnapIds");
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_TRUE(engine_->FinishUdfRuns().ok());
  sql::QueryResult r = Q(meta_.get(), "SELECT COUNT(*) FROM Result");
  EXPECT_EQ(r.rows[0][0].integer(), 8);
}

TEST_F(RqlLoggedInTest, UdfFormAggregateVariable) {
  ASSERT_TRUE(engine_->RegisterUdfs().ok());
  sql::QueryResult running = Q(
      meta_.get(),
      "SELECT AggregateDataInVariable(snap_id, "
      "'SELECT DISTINCT current_snapshot() AS sid FROM LoggedIn "
      "WHERE l_userid = ''UserB'' ', 'Result', 'min') FROM SnapIds");
  ASSERT_TRUE(engine_->FinishUdfRuns().ok());
  ASSERT_EQ(running.rows.size(), 3u);
  EXPECT_EQ(running.rows.back()[0].integer(), 1);
  sql::QueryResult r = Q(meta_.get(), "SELECT * FROM Result");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].integer(), 1);
}

TEST_F(RqlLoggedInTest, UdfFormAggregateTable) {
  ASSERT_TRUE(engine_->RegisterUdfs().ok());
  Status s = meta_->Exec(
      "SELECT AggregateDataInTable(snap_id, "
      "'SELECT l_country, COUNT(*) AS c FROM LoggedIn GROUP BY l_country', "
      "'Result', '(c,max)') FROM SnapIds");
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_TRUE(engine_->FinishUdfRuns().ok());
  sql::QueryResult r =
      Q(meta_.get(), "SELECT l_country, c FROM Result ORDER BY l_country");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1].integer(), 2);
  EXPECT_EQ(r.rows[1][1].integer(), 2);
}

TEST_F(RqlLoggedInTest, UdfFormIntervals) {
  ASSERT_TRUE(engine_->RegisterUdfs().ok());
  Status s = meta_->Exec(
      "SELECT CollateDataIntoIntervals(snap_id, "
      "'SELECT l_userid FROM LoggedIn', 'Result') FROM SnapIds");
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_TRUE(engine_->FinishUdfRuns().ok());
  sql::QueryResult r = Q(
      meta_.get(),
      "SELECT start_snapshot, end_snapshot FROM Result "
      "WHERE l_userid = 'UserB'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].integer(), 1);
  EXPECT_EQ(r.rows[0][1].integer(), 3);
}

TEST_F(RqlLoggedInTest, UdfFormTwoMechanismsInOneStatement) {
  // Each UDF call keyed by its result table: two mechanisms can share one
  // driving SELECT over SnapIds.
  ASSERT_TRUE(engine_->RegisterUdfs().ok());
  Status s = meta_->Exec(
      "SELECT CollateData(snap_id, 'SELECT l_userid FROM LoggedIn', 'A'), "
      "AggregateDataInVariable(snap_id, "
      "'SELECT COUNT(*) AS c FROM LoggedIn', 'B', 'max') FROM SnapIds");
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_TRUE(engine_->FinishUdfRuns().ok());
  EXPECT_EQ(Q(meta_.get(), "SELECT COUNT(*) FROM A").rows[0][0].integer(),
            8);
  EXPECT_EQ(Q(meta_.get(), "SELECT * FROM B").rows[0][0].integer(), 3);
}

TEST_F(RqlLoggedInTest, AllColdOptionMatchesResults) {
  // The all-cold measurement mode must not change any result.
  Status s = engine_->AggregateDataInTable(
      "SELECT snap_id FROM SnapIds",
      "SELECT l_country, COUNT(*) AS c FROM LoggedIn GROUP BY l_country",
      "Warm", "(c,max)");
  ASSERT_TRUE(s.ok());
  engine_->mutable_options()->cold_cache_per_iteration = true;
  s = engine_->AggregateDataInTable(
      "SELECT snap_id FROM SnapIds",
      "SELECT l_country, COUNT(*) AS c FROM LoggedIn GROUP BY l_country",
      "Cold", "(c,max)");
  engine_->mutable_options()->cold_cache_per_iteration = false;
  ASSERT_TRUE(s.ok());
  sql::QueryResult warm =
      Q(meta_.get(), "SELECT l_country, c FROM Warm ORDER BY l_country");
  sql::QueryResult cold =
      Q(meta_.get(), "SELECT l_country, c FROM Cold ORDER BY l_country");
  ASSERT_EQ(warm.rows.size(), cold.rows.size());
  for (size_t i = 0; i < warm.rows.size(); ++i) {
    EXPECT_EQ(warm.rows[i][1].integer(), cold.rows[i][1].integer());
  }
}

TEST_F(RqlLoggedInTest, SortMergeStrategyMatchesIndexProbe) {
  // The alternative the paper reports trying (and finding costlier) must
  // produce identical results.
  const char* qq =
      "SELECT l_country, COUNT(*) AS c FROM LoggedIn GROUP BY l_country";
  ASSERT_TRUE(engine_
                  ->AggregateDataInTable("SELECT snap_id FROM SnapIds", qq,
                                         "ViaProbe", "(c,max)")
                  .ok());
  engine_->mutable_options()->agg_table_strategy =
      AggTableStrategy::kSortMerge;
  Status s = engine_->AggregateDataInTable("SELECT snap_id FROM SnapIds",
                                           qq, "ViaMerge", "(c,max)");
  engine_->mutable_options()->agg_table_strategy =
      AggTableStrategy::kIndexProbe;
  ASSERT_TRUE(s.ok()) << s.ToString();

  sql::QueryResult probe =
      Q(meta_.get(), "SELECT l_country, c FROM ViaProbe ORDER BY l_country");
  sql::QueryResult merge =
      Q(meta_.get(), "SELECT l_country, c FROM ViaMerge ORDER BY l_country");
  ASSERT_EQ(probe.rows.size(), merge.rows.size());
  for (size_t i = 0; i < probe.rows.size(); ++i) {
    EXPECT_EQ(probe.rows[i][0].text(), merge.rows[i][0].text());
    EXPECT_EQ(probe.rows[i][1].integer(), merge.rows[i][1].integer());
  }
}

TEST_F(RqlLoggedInTest, SortMergeWithAvgAggregate) {
  engine_->mutable_options()->agg_table_strategy =
      AggTableStrategy::kSortMerge;
  Status s = engine_->AggregateDataInTable(
      "SELECT snap_id FROM SnapIds",
      "SELECT l_country, COUNT(*) AS c FROM LoggedIn GROUP BY l_country",
      "AvgMerge", "(c,avg)");
  engine_->mutable_options()->agg_table_strategy =
      AggTableStrategy::kIndexProbe;
  ASSERT_TRUE(s.ok()) << s.ToString();
  sql::QueryResult r =
      Q(meta_.get(), "SELECT l_country, c FROM AvgMerge ORDER BY l_country");
  ASSERT_EQ(r.rows.size(), 2u);
  // UK: 1,1,2 logged in -> avg 4/3; USA: 2,1,1 -> avg 4/3.
  EXPECT_NEAR(r.rows[0][1].AsDouble(), 4.0 / 3.0, 1e-9);
  EXPECT_NEAR(r.rows[1][1].AsDouble(), 4.0 / 3.0, 1e-9);
}

TEST_F(RqlLoggedInTest, KeepResultTableOptionFailsOnRerun) {
  engine_->mutable_options()->replace_result_table = false;
  ASSERT_TRUE(engine_
                  ->CollateData("SELECT snap_id FROM SnapIds",
                                "SELECT l_userid FROM LoggedIn", "Keep")
                  .ok());
  // Without replacement, the second run collides with the existing table.
  Status s = engine_->CollateData("SELECT snap_id FROM SnapIds",
                                  "SELECT l_userid FROM LoggedIn", "Keep");
  EXPECT_FALSE(s.ok());
  engine_->mutable_options()->replace_result_table = true;
}

TEST_F(RqlLoggedInTest, InjectAsOfRewrite) {
  EXPECT_EQ(RqlEngine::InjectAsOf("SELECT * FROM t", 7),
            "SELECT AS OF 7 * FROM t");
  EXPECT_EQ(RqlEngine::InjectAsOf("select distinct x from t", 12),
            "select AS OF 12 distinct x from t");
  // String literals containing "select" are not touched.
  EXPECT_EQ(RqlEngine::InjectAsOf("SELECT 'select' FROM t", 1),
            "SELECT AS OF 1 'select' FROM t");
  // Word boundaries: "selection" is not SELECT.
  EXPECT_EQ(RqlEngine::InjectAsOf("selection SELECT x", 2),
            "selection SELECT AS OF 2 x");
}

TEST_F(RqlLoggedInTest, TruncateHistoryCleansSnapIds) {
  ASSERT_TRUE(engine_->TruncateHistory(2).ok());
  sql::QueryResult snaps =
      Q(meta_.get(), "SELECT snap_id FROM SnapIds ORDER BY snap_id");
  ASSERT_EQ(snaps.rows.size(), 2u);
  EXPECT_EQ(snaps.rows[0][0].integer(), 2);
  // Mechanisms over "all snapshots" now cover only the retained ones.
  ASSERT_TRUE(engine_
                  ->CollateData("SELECT snap_id FROM SnapIds",
                                "SELECT DISTINCT l_userid, "
                                "current_snapshot() AS sid FROM LoggedIn",
                                "Result")
                  .ok());
  EXPECT_EQ(engine_->last_run_stats().iterations.size(), 2u);
  sql::QueryResult r = Q(meta_.get(), "SELECT COUNT(*) FROM Result");
  EXPECT_EQ(r.rows[0][0].integer(), 5);  // S2: B,C  S3: B,C,D
  // The dropped snapshot is unreachable even by explicit Qs.
  Status s = engine_->CollateData(
      "SELECT 1", "SELECT l_userid FROM LoggedIn", "Result2");
  EXPECT_FALSE(s.ok());
}

TEST_F(RqlLoggedInTest, ParseColFuncPairsBothOrders) {
  auto pairs = RqlEngine::ParseColFuncPairs("(l_time,min)");
  ASSERT_TRUE(pairs.ok());
  ASSERT_EQ(pairs->size(), 1u);
  EXPECT_EQ((*pairs)[0].column, "l_time");
  EXPECT_EQ((*pairs)[0].func, RqlAggFunc::kMin);

  pairs = RqlEngine::ParseColFuncPairs("(MAX,cn):(MAX,av)");
  ASSERT_TRUE(pairs.ok());
  ASSERT_EQ(pairs->size(), 2u);
  EXPECT_EQ((*pairs)[0].column, "cn");
  EXPECT_EQ((*pairs)[0].func, RqlAggFunc::kMax);
  EXPECT_EQ((*pairs)[1].column, "av");

  EXPECT_FALSE(RqlEngine::ParseColFuncPairs("").ok());
  EXPECT_FALSE(RqlEngine::ParseColFuncPairs("(a,b)").ok());
}

TEST_F(RqlLoggedInTest, DistinctAggregatesRejected) {
  Status s = engine_->AggregateDataInVariable(
      "SELECT snap_id FROM SnapIds", "SELECT 1 FROM LoggedIn", "Result",
      "count distinct");
  EXPECT_EQ(s.code(), StatusCode::kNotSupported);
}

TEST_F(RqlLoggedInTest, AggVariableRejectsMultiRowQq) {
  Status s = engine_->AggregateDataInVariable(
      "SELECT snap_id FROM SnapIds",
      "SELECT l_userid FROM LoggedIn", "Result", "min");
  EXPECT_FALSE(s.ok());
}

TEST_F(RqlLoggedInTest, IterationStatsArePopulated) {
  ASSERT_TRUE(engine_
                  ->AggregateDataInVariable(
                      "SELECT snap_id FROM SnapIds",
                      "SELECT COUNT(*) AS c FROM LoggedIn", "Result", "max")
                  .ok());
  const RqlRunStats& stats = engine_->last_run_stats();
  ASSERT_EQ(stats.iterations.size(), 3u);
  for (const RqlIterationStats& it : stats.iterations) {
    EXPECT_GE(it.query_eval_us, 0);
    EXPECT_GE(it.spt_build_us, 0);
    EXPECT_EQ(it.qq_rows, 1);
  }
  // Old snapshots were overwritten, so iterating must touch the Pagelog.
  EXPECT_GT(stats.PagelogPages(), 0);
}

TEST_F(RqlLoggedInTest, RerunReplacesResultTable) {
  for (int round = 0; round < 2; ++round) {
    Status s = engine_->CollateData(
        "SELECT snap_id FROM SnapIds",
        "SELECT DISTINCT l_userid, current_snapshot() AS sid FROM LoggedIn",
        "Result");
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
  sql::QueryResult r = Q(meta_.get(), "SELECT COUNT(*) FROM Result");
  EXPECT_EQ(r.rows[0][0].integer(), 8);  // not doubled
}

TEST_F(RqlLoggedInTest, CollateThenSqlEqualsAggregateTable) {
  // The paper's §5.3 equivalence: CollateData + SQL == AggregateDataInTable.
  ASSERT_TRUE(engine_
                  ->AggregateDataInTable(
                      "SELECT snap_id FROM SnapIds",
                      "SELECT l_country, COUNT(*) AS c FROM LoggedIn "
                      "GROUP BY l_country",
                      "AggResult", "(c,max)")
                  .ok());
  ASSERT_TRUE(engine_
                  ->CollateData(
                      "SELECT snap_id FROM SnapIds",
                      "SELECT l_country, COUNT(*) AS c FROM LoggedIn "
                      "GROUP BY l_country",
                      "CollateResult")
                  .ok());
  sql::QueryResult via_agg = Q(
      meta_.get(), "SELECT l_country, c FROM AggResult ORDER BY l_country");
  sql::QueryResult via_collate = Q(
      meta_.get(),
      "SELECT l_country, MAX(c) AS c FROM CollateResult "
      "GROUP BY l_country ORDER BY l_country");
  ASSERT_EQ(via_agg.rows.size(), via_collate.rows.size());
  for (size_t i = 0; i < via_agg.rows.size(); ++i) {
    EXPECT_EQ(via_agg.rows[i][0].text(), via_collate.rows[i][0].text());
    EXPECT_EQ(via_agg.rows[i][1].integer(), via_collate.rows[i][1].integer());
  }
}

// --- observability: the per-run trace --------------------------------------

TEST_F(RqlLoggedInTest, TraceRecordsRunAndIterationPhases) {
  engine_->mutable_options()->trace = true;
  ASSERT_TRUE(engine_
                  ->CollateData("SELECT snap_id FROM SnapIds",
                                "SELECT DISTINCT l_userid FROM LoggedIn",
                                "Result")
                  .ok());
  const RqlTrace& trace = engine_->last_run_trace();
  std::vector<RqlTraceEvent> events = trace.Events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(trace.dropped(), 0);

  // Envelope: one run_begin first (3 snapshots, 1 worker), one run_end
  // last (3 iterations, ok), monotonic timestamps in between.
  EXPECT_EQ(events.front().type, RqlTraceEventType::kRunBegin);
  EXPECT_EQ(events.front().args[0], 3);
  EXPECT_EQ(events.front().args[1], 1);
  EXPECT_EQ(events.back().type, RqlTraceEventType::kRunEnd);
  EXPECT_EQ(events.back().args[0], 3);
  EXPECT_EQ(events.back().args[3], 1);
  int64_t last_t = 0;
  for (const RqlTraceEvent& ev : events) {
    EXPECT_GE(ev.t_us, last_t);
    last_t = ev.t_us;
  }

  // Phase attribution: each iteration_end mirrors the matching
  // RqlIterationStats fields exactly (the Fig. 8 components).
  const RqlRunStats& stats = engine_->last_run_stats();
  size_t seen = 0;
  for (const RqlTraceEvent& ev : events) {
    if (ev.type != RqlTraceEventType::kIterationEnd) continue;
    ASSERT_LT(seen, stats.iterations.size());
    const RqlIterationStats& it = stats.iterations[seen];
    EXPECT_EQ(ev.snapshot, it.snapshot);
    EXPECT_EQ(ev.args[0], it.io_us);
    EXPECT_EQ(ev.args[1], it.spt_build_us);
    EXPECT_EQ(ev.args[2], it.query_eval_us);
    EXPECT_EQ(ev.args[3], it.index_create_us);
    EXPECT_EQ(ev.args[4], it.udf_us);
    EXPECT_EQ(ev.args[5], it.qq_rows);
    ++seen;
  }
  EXPECT_EQ(seen, 3u);
}

TEST_F(RqlLoggedInTest, TraceCapacityBoundsMemoryDropOldest) {
  engine_->mutable_options()->trace = true;
  engine_->mutable_options()->trace_capacity = 4;
  ASSERT_TRUE(engine_
                  ->CollateData("SELECT snap_id FROM SnapIds",
                                "SELECT DISTINCT l_userid FROM LoggedIn",
                                "Result")
                  .ok());
  const RqlTrace& trace = engine_->last_run_trace();
  EXPECT_EQ(trace.capacity(), 4u);
  EXPECT_EQ(trace.Events().size(), 4u);
  EXPECT_GT(trace.dropped(), 0);
  EXPECT_EQ(trace.emitted(), trace.dropped() + 4);
  // Drop-oldest: the newest event (run_end) is always retained.
  EXPECT_EQ(trace.Events().back().type, RqlTraceEventType::kRunEnd);
}

TEST_F(RqlLoggedInTest, TraceOffHasZeroDrift) {
  // Traced reference run.
  engine_->mutable_options()->trace = true;
  ASSERT_TRUE(engine_
                  ->CollateData("SELECT snap_id FROM SnapIds",
                                "SELECT DISTINCT l_userid FROM LoggedIn",
                                "Traced")
                  .ok());
  RqlRunStats traced = engine_->last_run_stats();
  EXPECT_GT(engine_->last_run_trace().emitted(), 0);

  // Identical run with tracing off: no events, and every non-time
  // counter — and the result table — is identical.
  engine_->mutable_options()->trace = false;
  ASSERT_TRUE(engine_
                  ->CollateData("SELECT snap_id FROM SnapIds",
                                "SELECT DISTINCT l_userid FROM LoggedIn",
                                "Plain")
                  .ok());
  EXPECT_EQ(engine_->last_run_trace().emitted(), 0);
  const RqlRunStats& plain = engine_->last_run_stats();
  ASSERT_EQ(plain.iterations.size(), traced.iterations.size());
  for (size_t i = 0; i < plain.iterations.size(); ++i) {
    EXPECT_EQ(plain.iterations[i].qq_rows, traced.iterations[i].qq_rows);
    EXPECT_EQ(plain.iterations[i].db_pages, traced.iterations[i].db_pages);
    EXPECT_EQ(plain.iterations[i].pagelog_pages,
              traced.iterations[i].pagelog_pages);
    EXPECT_EQ(plain.iterations[i].result_inserts,
              traced.iterations[i].result_inserts);
  }
  sql::QueryResult a =
      Q(meta_.get(), "SELECT l_userid FROM Traced ORDER BY l_userid");
  sql::QueryResult b =
      Q(meta_.get(), "SELECT l_userid FROM Plain ORDER BY l_userid");
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(sql::EncodeRow(a.rows[i]), sql::EncodeRow(b.rows[i]));
  }
}

TEST_F(RqlLoggedInTest, UdfFormEmitsTrace) {
  engine_->mutable_options()->trace = true;
  ASSERT_TRUE(engine_->RegisterUdfs().ok());
  ASSERT_TRUE(meta_
                  ->Exec("SELECT CollateData(snap_id, "
                         "'SELECT DISTINCT l_userid FROM LoggedIn', "
                         "'Result') FROM SnapIds")
                  .ok());
  ASSERT_TRUE(engine_->FinishUdfRuns().ok());
  std::vector<RqlTraceEvent> events = engine_->last_run_trace().Events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().type, RqlTraceEventType::kRunBegin);
  EXPECT_EQ(events.back().type, RqlTraceEventType::kRunEnd);
  EXPECT_EQ(events.back().args[0], 3);  // three UDF-driven iterations
}

// --- current_snapshot() literal awareness ----------------------------------

TEST_F(RqlLoggedInTest, LiteralCurrentSnapshotSurvivesCollate) {
  // The literal is plain text being SELECTed, not a call: every output
  // row must carry it verbatim, at any worker count.
  const char* qq =
      "SELECT l_userid, 'current_snapshot()' AS tag, "
      "current_snapshot() AS sid FROM LoggedIn WHERE l_userid = 'UserB'";
  ASSERT_TRUE(engine_
                  ->CollateData("SELECT snap_id FROM SnapIds", qq, "Result")
                  .ok());
  sql::QueryResult r =
      Q(meta_.get(), "SELECT DISTINCT tag FROM Result");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].text(), "current_snapshot()");

  engine_->mutable_options()->parallel_workers = 3;
  ASSERT_TRUE(engine_
                  ->CollateData("SELECT snap_id FROM SnapIds", qq, "Par")
                  .ok());
  sql::QueryResult p = Q(meta_.get(), "SELECT DISTINCT tag FROM Par");
  ASSERT_EQ(p.rows.size(), 1u);
  EXPECT_EQ(p.rows[0][0].text(), "current_snapshot()");
}

TEST(RqlCurrentSnapshotSkipTest, LiteralDoesNotDisableSkip) {
  // A history where `tagged` is untouched after snapshot 1: snapshots 2-4
  // are provably unchanged and skippable — unless the skip probe misreads
  // the quoted literal in Qq as a real current_snapshot() call.
  storage::InMemoryEnv env;
  auto data = sql::Database::Open(&env, "data");
  auto meta = sql::Database::Open(&env, "meta");
  ASSERT_TRUE(data.ok() && meta.ok());
  RqlEngine engine(data->get(), meta->get());
  ASSERT_TRUE(engine.EnsureSnapIds().ok());
  ASSERT_TRUE(
      (*data)->Exec("CREATE TABLE tagged (id INTEGER, tag TEXT)").ok());
  ASSERT_TRUE(
      (*data)
          ->Exec("INSERT INTO tagged VALUES (1, 'current_snapshot()')")
          .ok());
  ASSERT_TRUE((*data)->Exec("CREATE TABLE churn (x INTEGER)").ok());
  ASSERT_TRUE(engine.CommitWithSnapshot("t1").ok());
  for (int s = 2; s <= 4; ++s) {
    ASSERT_TRUE((*data)
                    ->Exec("BEGIN; INSERT INTO churn VALUES (" +
                           std::to_string(s) + ")")
                    .ok());
    ASSERT_TRUE(engine.CommitWithSnapshot("t" + std::to_string(s)).ok());
  }
  engine.mutable_options()->skip_unchanged_iterations = true;

  const char* qq =
      "SELECT id FROM tagged WHERE tag = 'current_snapshot()'";
  ASSERT_TRUE(
      engine.CollateData("SELECT snap_id FROM SnapIds", qq, "Lit").ok());
  // The literal predicate matched in every snapshot...
  auto count = (*meta)->QueryScalar("SELECT COUNT(*) FROM Lit");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->integer(), 4);
  // ...and the unchanged iterations were skipped, not re-executed.
  EXPECT_GT(engine.last_run_stats().iterations_skipped, 0);

  // Contrast: a real call makes results snapshot-dependent, so the same
  // unchanged history must never skip.
  ASSERT_TRUE(engine
                  .CollateData("SELECT snap_id FROM SnapIds",
                               "SELECT id, current_snapshot() AS sid "
                               "FROM tagged",
                               "Call")
                  .ok());
  EXPECT_EQ(engine.last_run_stats().iterations_skipped, 0);
}

}  // namespace
}  // namespace rql

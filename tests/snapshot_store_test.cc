#include "retro/snapshot_store.h"

#include <gtest/gtest.h>

namespace rql::retro {
namespace {

storage::Page TaggedPage(uint64_t tag) {
  storage::Page p;
  p.Zero();
  p.WriteU64(0, tag);
  return p;
}

class SnapshotStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto store = SnapshotStore::Open(&env_, "t");
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
  }

  uint64_t ReadTag(storage::PageReader* reader, storage::PageId id) {
    storage::Page p;
    Status s = reader->ReadPage(id, &p);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return p.ReadU64(0);
  }

  storage::InMemoryEnv env_;
  std::unique_ptr<SnapshotStore> store_;
};

TEST_F(SnapshotStoreTest, SnapshotSeesPreStateAfterOverwrite) {
  auto id = store_->AllocatePage();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store_->WritePage(*id, TaggedPage(1)).ok());

  auto snap = store_->DeclareSnapshot();
  ASSERT_TRUE(snap.ok());
  ASSERT_TRUE(store_->WritePage(*id, TaggedPage(2)).ok());

  EXPECT_EQ(ReadTag(store_.get(), *id), 2u);
  auto view = store_->OpenSnapshot(*snap);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(ReadTag(view->get(), *id), 1u);
}

TEST_F(SnapshotStoreTest, UnmodifiedPagesAreSharedWithCurrentState) {
  auto id = store_->AllocatePage();
  ASSERT_TRUE(store_->WritePage(*id, TaggedPage(7)).ok());
  auto snap = store_->DeclareSnapshot();
  ASSERT_TRUE(snap.ok());

  store_->ResetStats();
  auto view = store_->OpenSnapshot(*snap);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ((*view)->spt_size(), 0u);
  EXPECT_EQ(ReadTag(view->get(), *id), 7u);
  EXPECT_EQ(store_->stats()->db_page_reads, 1);
  EXPECT_EQ(store_->stats()->pagelog_page_reads, 0);
}

TEST_F(SnapshotStoreTest, MultipleSnapshotsSeeTheirOwnStates) {
  auto id = store_->AllocatePage();
  for (uint64_t v = 1; v <= 5; ++v) {
    ASSERT_TRUE(store_->WritePage(*id, TaggedPage(v)).ok());
    ASSERT_TRUE(store_->DeclareSnapshot().ok());
  }
  ASSERT_TRUE(store_->WritePage(*id, TaggedPage(99)).ok());

  for (SnapshotId s = 1; s <= 5; ++s) {
    auto view = store_->OpenSnapshot(s);
    ASSERT_TRUE(view.ok());
    EXPECT_EQ(ReadTag(view->get(), *id), s) << "snapshot " << s;
  }
  EXPECT_EQ(ReadTag(store_.get(), *id), 99u);
}

TEST_F(SnapshotStoreTest, ConsecutiveSnapshotsSharePreStates) {
  // One page modified once, then three snapshots declared, then modified:
  // all three snapshots must share a single archived pre-state.
  auto id = store_->AllocatePage();
  ASSERT_TRUE(store_->WritePage(*id, TaggedPage(1)).ok());
  ASSERT_TRUE(store_->DeclareSnapshot().ok());   // snap 1
  ASSERT_TRUE(store_->DeclareSnapshot().ok());   // snap 2
  ASSERT_TRUE(store_->DeclareSnapshot().ok());   // snap 3
  ASSERT_TRUE(store_->WritePage(*id, TaggedPage(2)).ok());

  EXPECT_EQ(store_->pagelog()->record_count(), 1u);

  // Reading the page as of snapshot 1 warms the cache; snapshots 2 and 3
  // then hit the cache because they share the same Pagelog location.
  store_->ClearSnapshotCache();
  store_->ResetStats();
  for (SnapshotId s = 1; s <= 3; ++s) {
    auto view = store_->OpenSnapshot(s);
    ASSERT_TRUE(view.ok());
    EXPECT_EQ(ReadTag(view->get(), *id), 1u);
  }
  EXPECT_EQ(store_->stats()->pagelog_page_reads, 1);
  EXPECT_EQ(store_->stats()->snapshot_cache_hits, 2);
}

TEST_F(SnapshotStoreTest, WritesWithinOneEpochCaptureOnce) {
  auto id = store_->AllocatePage();
  ASSERT_TRUE(store_->WritePage(*id, TaggedPage(1)).ok());
  ASSERT_TRUE(store_->DeclareSnapshot().ok());
  for (uint64_t v = 2; v <= 10; ++v) {
    ASSERT_TRUE(store_->WritePage(*id, TaggedPage(v)).ok());
  }
  EXPECT_EQ(store_->pagelog()->record_count(), 1u);
  auto view = store_->OpenSnapshot(1);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(ReadTag(view->get(), *id), 1u);
}

TEST_F(SnapshotStoreTest, OpenViewStaysConsistentAcrossLaterUpdates) {
  auto id = store_->AllocatePage();
  ASSERT_TRUE(store_->WritePage(*id, TaggedPage(1)).ok());
  auto snap = store_->DeclareSnapshot();
  ASSERT_TRUE(snap.ok());

  // Open the view while the page is still shared with the database.
  auto view = store_->OpenSnapshot(*snap);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ((*view)->spt_size(), 0u);

  // Now overwrite the page; the open view must still see the pre-state
  // (the MVCC non-interference property from the paper's Section 4).
  ASSERT_TRUE(store_->WritePage(*id, TaggedPage(2)).ok());
  EXPECT_EQ(ReadTag(view->get(), *id), 1u);
  EXPECT_EQ(ReadTag(store_.get(), *id), 2u);
}

TEST_F(SnapshotStoreTest, CommitWithSnapshotDeclares) {
  auto id = store_->AllocatePage();
  ASSERT_TRUE(store_->Begin().ok());
  ASSERT_TRUE(store_->WritePage(*id, TaggedPage(5)).ok());
  SnapshotId snap = kNoSnapshot;
  ASSERT_TRUE(store_->Commit(/*declare_snapshot=*/true, &snap).ok());
  EXPECT_EQ(snap, 1u);
  EXPECT_EQ(store_->latest_snapshot(), 1u);

  // The snapshot reflects the declaring transaction's own updates.
  auto view = store_->OpenSnapshot(snap);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(ReadTag(view->get(), *id), 5u);
}

TEST_F(SnapshotStoreTest, RollbackRestoresPagesAndAllocations) {
  auto id = store_->AllocatePage();
  ASSERT_TRUE(store_->WritePage(*id, TaggedPage(1)).ok());

  ASSERT_TRUE(store_->Begin().ok());
  ASSERT_TRUE(store_->WritePage(*id, TaggedPage(2)).ok());
  auto extra = store_->AllocatePage();
  ASSERT_TRUE(extra.ok());
  ASSERT_TRUE(store_->Rollback().ok());

  EXPECT_EQ(ReadTag(store_.get(), *id), 1u);
  EXPECT_EQ(store_->page_store()->allocated_pages(), 1u);
  EXPECT_FALSE(store_->in_transaction());
}

TEST_F(SnapshotStoreTest, RollbackAfterSnapshotKeepsAsOfStateCorrect) {
  auto id = store_->AllocatePage();
  ASSERT_TRUE(store_->WritePage(*id, TaggedPage(1)).ok());
  auto snap = store_->DeclareSnapshot();
  ASSERT_TRUE(snap.ok());

  // The write captures the pre-state, then rolls back.
  ASSERT_TRUE(store_->Begin().ok());
  ASSERT_TRUE(store_->WritePage(*id, TaggedPage(2)).ok());
  ASSERT_TRUE(store_->Rollback().ok());

  auto view = store_->OpenSnapshot(*snap);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(ReadTag(view->get(), *id), 1u);
  EXPECT_EQ(ReadTag(store_.get(), *id), 1u);

  // A later write after another snapshot still yields correct history.
  auto snap2 = store_->DeclareSnapshot();
  ASSERT_TRUE(snap2.ok());
  ASSERT_TRUE(store_->WritePage(*id, TaggedPage(3)).ok());
  auto view2 = store_->OpenSnapshot(*snap2);
  ASSERT_TRUE(view2.ok());
  EXPECT_EQ(ReadTag(view2->get(), *id), 1u);
}

TEST_F(SnapshotStoreTest, FreedPageStillReadableInSnapshot) {
  auto id = store_->AllocatePage();
  ASSERT_TRUE(store_->WritePage(*id, TaggedPage(42)).ok());
  auto snap = store_->DeclareSnapshot();
  ASSERT_TRUE(snap.ok());
  ASSERT_TRUE(store_->FreePage(*id).ok());

  auto view = store_->OpenSnapshot(*snap);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(ReadTag(view->get(), *id), 42u);
}

TEST_F(SnapshotStoreTest, DeferredFreeInsideTransaction) {
  auto id = store_->AllocatePage();
  ASSERT_TRUE(store_->WritePage(*id, TaggedPage(9)).ok());

  ASSERT_TRUE(store_->Begin().ok());
  ASSERT_TRUE(store_->FreePage(*id).ok());
  ASSERT_TRUE(store_->Rollback().ok());
  EXPECT_EQ(ReadTag(store_.get(), *id), 9u);  // free undone

  ASSERT_TRUE(store_->Begin().ok());
  ASSERT_TRUE(store_->FreePage(*id).ok());
  ASSERT_TRUE(store_->Commit().ok());
  EXPECT_EQ(store_->page_store()->allocated_pages(), 0u);
}

TEST_F(SnapshotStoreTest, StateRecoversAcrossReopen) {
  auto id = store_->AllocatePage();
  ASSERT_TRUE(store_->WritePage(*id, TaggedPage(1)).ok());
  auto snap = store_->DeclareSnapshot();
  ASSERT_TRUE(snap.ok());
  ASSERT_TRUE(store_->WritePage(*id, TaggedPage(2)).ok());
  store_.reset();

  auto reopened = SnapshotStore::Open(&env_, "t");
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->latest_snapshot(), 1u);
  auto view = (*reopened)->OpenSnapshot(1);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(ReadTag(view->get(), *id), 1u);

  // Critically, a page last modified *after* the snapshot must not be
  // re-captured with a range covering the snapshot after reopen.
  ASSERT_TRUE((*reopened)->WritePage(*id, TaggedPage(3)).ok());
  auto view2 = (*reopened)->OpenSnapshot(1);
  ASSERT_TRUE(view2.ok());
  EXPECT_EQ(ReadTag(view2->get(), *id), 1u);
}

TEST_F(SnapshotStoreTest, UnknownSnapshotIdFails) {
  EXPECT_FALSE(store_->OpenSnapshot(1).ok());
  ASSERT_TRUE(store_->DeclareSnapshot().ok());
  EXPECT_TRUE(store_->OpenSnapshot(1).ok());
  EXPECT_FALSE(store_->OpenSnapshot(2).ok());
  EXPECT_FALSE(store_->OpenSnapshot(kNoSnapshot).ok());
}

TEST_F(SnapshotStoreTest, NestedBeginFails) {
  ASSERT_TRUE(store_->Begin().ok());
  EXPECT_FALSE(store_->Begin().ok());
  ASSERT_TRUE(store_->Commit().ok());
  EXPECT_FALSE(store_->Commit().ok());
  EXPECT_FALSE(store_->Rollback().ok());
}

TEST_F(SnapshotStoreTest, OverwriteCycleFetchCounts) {
  // Build a small database of 8 pages, snapshot, then overwrite all of
  // them: a query touching every page as of the snapshot fetches all 8
  // from the Pagelog (a complete overwrite cycle).
  std::vector<storage::PageId> ids;
  for (int i = 0; i < 8; ++i) {
    auto id = store_->AllocatePage();
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(store_->WritePage(*id, TaggedPage(100 + i)).ok());
    ids.push_back(*id);
  }
  auto snap = store_->DeclareSnapshot();
  ASSERT_TRUE(snap.ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(store_->WritePage(ids[i], TaggedPage(200 + i)).ok());
  }

  store_->ClearSnapshotCache();
  store_->ResetStats();
  auto view = store_->OpenSnapshot(*snap);
  ASSERT_TRUE(view.ok());
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(ReadTag(view->get(), ids[i]), 100u + i);
  }
  EXPECT_EQ(store_->stats()->pagelog_page_reads, 8);
  EXPECT_EQ(store_->stats()->db_page_reads, 0);
}

TEST_F(SnapshotStoreTest, SnapshotSetSessionMatchesColdOpens) {
  // Two pages modified in different epochs; views opened inside a
  // snapshot-set session must read exactly what cold opens read, in any
  // visit order (ascending uses the cursor, descending falls back).
  auto a = store_->AllocatePage();
  auto b = store_->AllocatePage();
  for (uint64_t v = 1; v <= 6; ++v) {
    ASSERT_TRUE(store_->WritePage(*a, TaggedPage(10 * v)).ok());
    if (v % 2 == 0) {
      ASSERT_TRUE(store_->WritePage(*b, TaggedPage(100 * v)).ok());
    }
    ASSERT_TRUE(store_->DeclareSnapshot().ok());
  }
  ASSERT_TRUE(store_->WritePage(*a, TaggedPage(999)).ok());
  ASSERT_TRUE(store_->WritePage(*b, TaggedPage(999)).ok());

  std::vector<std::pair<uint64_t, uint64_t>> cold;
  for (SnapshotId s = 1; s <= 6; ++s) {
    auto view = store_->OpenSnapshot(s);
    ASSERT_TRUE(view.ok());
    cold.push_back({ReadTag(view->get(), *a), ReadTag(view->get(), *b)});
  }

  store_->BeginSnapshotSet();
  EXPECT_TRUE(store_->snapshot_set_active());
  for (SnapshotId s = 1; s <= 6; ++s) {
    auto view = store_->OpenSnapshot(s);
    ASSERT_TRUE(view.ok());
    EXPECT_EQ(ReadTag(view->get(), *a), cold[s - 1].first) << "snap " << s;
    EXPECT_EQ(ReadTag(view->get(), *b), cold[s - 1].second) << "snap " << s;
  }
  // Descending re-visit inside the same session: rebase fallback.
  for (SnapshotId s = 6; s >= 1; --s) {
    auto view = store_->OpenSnapshot(s);
    ASSERT_TRUE(view.ok());
    EXPECT_EQ(ReadTag(view->get(), *a), cold[s - 1].first) << "snap " << s;
  }
  store_->EndSnapshotSet();
  EXPECT_FALSE(store_->snapshot_set_active());
}

TEST_F(SnapshotStoreTest, SnapshotSetSeesUpdatesCommittedMidSession) {
  auto id = store_->AllocatePage();
  ASSERT_TRUE(store_->WritePage(*id, TaggedPage(1)).ok());
  auto s1 = store_->DeclareSnapshot();
  ASSERT_TRUE(s1.ok());

  store_->BeginSnapshotSet();
  {
    auto view = store_->OpenSnapshot(*s1);
    ASSERT_TRUE(view.ok());
    EXPECT_EQ(ReadTag(view->get(), *id), 1u);
  }
  // History grows while the session is open (the cursor must ingest the
  // appended capture).
  ASSERT_TRUE(store_->WritePage(*id, TaggedPage(2)).ok());
  auto s2 = store_->DeclareSnapshot();
  ASSERT_TRUE(s2.ok());
  ASSERT_TRUE(store_->WritePage(*id, TaggedPage(3)).ok());
  {
    auto view = store_->OpenSnapshot(*s2);
    ASSERT_TRUE(view.ok());
    EXPECT_EQ(ReadTag(view->get(), *id), 2u);
  }
  {
    auto view = store_->OpenSnapshot(*s1);  // backwards: rebase
    ASSERT_TRUE(view.ok());
    EXPECT_EQ(ReadTag(view->get(), *id), 1u);
  }
  store_->EndSnapshotSet();
}

TEST_F(SnapshotStoreTest, IncrementalSessionScansFewerMaplogEntries) {
  auto id = store_->AllocatePage();
  const SnapshotId kSnaps = 64;
  for (uint64_t v = 1; v <= kSnaps; ++v) {
    ASSERT_TRUE(store_->WritePage(*id, TaggedPage(v)).ok());
    ASSERT_TRUE(store_->DeclareSnapshot().ok());
  }
  ASSERT_TRUE(store_->WritePage(*id, TaggedPage(999)).ok());

  store_->ResetStats();
  for (SnapshotId s = 1; s <= kSnaps; ++s) {
    ASSERT_TRUE(store_->OpenSnapshot(s).ok());
  }
  int64_t cold_entries = store_->stats()->spt.entries_scanned;

  store_->ResetStats();
  store_->BeginSnapshotSet();
  for (SnapshotId s = 1; s <= kSnaps; ++s) {
    ASSERT_TRUE(store_->OpenSnapshot(s).ok());
  }
  store_->EndSnapshotSet();
  EXPECT_GT(store_->stats()->spt_delta_entries, 0);
  EXPECT_LT(store_->stats()->spt.entries_scanned, cold_entries);
}

TEST_F(SnapshotStoreTest, BatchedPrefetchWarmsCacheWithSameResults) {
  std::vector<storage::PageId> ids;
  for (int i = 0; i < 6; ++i) {
    auto id = store_->AllocatePage();
    ASSERT_TRUE(store_->WritePage(*id, TaggedPage(100 + i)).ok());
    ids.push_back(*id);
  }
  auto snap = store_->DeclareSnapshot();
  ASSERT_TRUE(snap.ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(store_->WritePage(ids[i], TaggedPage(200 + i)).ok());
  }

  store_->ClearSnapshotCache();
  store_->ResetStats();
  store_->set_batch_archive_reads(true);
  auto view = store_->OpenSnapshot(*snap);
  ASSERT_TRUE(view.ok());
  // The prefetch fetched every archived page in one ordered pass...
  EXPECT_EQ(store_->stats()->batched_pagelog_reads, 6);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(ReadTag(view->get(), ids[i]), 100u + i);
  }
  // ...so the demand path never touched the Pagelog.
  EXPECT_EQ(store_->stats()->pagelog_page_reads, 0);
  EXPECT_EQ(store_->stats()->snapshot_cache_hits, 6);
  store_->set_batch_archive_reads(false);

  // Second open with a warm cache: nothing left to prefetch.
  store_->ResetStats();
  store_->set_batch_archive_reads(true);
  ASSERT_TRUE(store_->OpenSnapshot(*snap).ok());
  EXPECT_EQ(store_->stats()->batched_pagelog_reads, 0);
  store_->set_batch_archive_reads(false);
}

}  // namespace
}  // namespace rql::retro

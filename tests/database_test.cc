#include "sql/database.h"

#include <gtest/gtest.h>

namespace rql::sql {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(&env_, "test");
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
  }

  QueryResult Q(const std::string& sql) {
    auto result = db_->Query(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? std::move(*result) : QueryResult{};
  }

  Value Scalar(const std::string& sql) {
    auto v = db_->QueryScalar(sql);
    EXPECT_TRUE(v.ok()) << sql << " -> " << v.status().ToString();
    return v.ok() ? *v : Value::Null();
  }

  void Ok(const std::string& sql) {
    Status s = db_->Exec(sql);
    ASSERT_TRUE(s.ok()) << sql << " -> " << s.ToString();
  }

  storage::InMemoryEnv env_;
  std::unique_ptr<Database> db_;
};

TEST_F(DatabaseTest, CreateInsertSelect) {
  Ok("CREATE TABLE t (a INTEGER, b TEXT)");
  Ok("INSERT INTO t VALUES (1, 'one'), (2, 'two')");
  QueryResult r = Q("SELECT * FROM t");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.columns, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(r.rows[0][0].integer(), 1);
  EXPECT_EQ(r.rows[1][1].text(), "two");
}

TEST_F(DatabaseTest, InsertWithColumnListFillsNulls) {
  Ok("CREATE TABLE t (a INTEGER, b TEXT, c REAL)");
  Ok("INSERT INTO t (c, a) VALUES (1.5, 7)");
  QueryResult r = Q("SELECT a, b, c FROM t");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].integer(), 7);
  EXPECT_TRUE(r.rows[0][1].is_null());
  EXPECT_DOUBLE_EQ(r.rows[0][2].real(), 1.5);
}

TEST_F(DatabaseTest, WhereFiltersAndExpressions) {
  Ok("CREATE TABLE n (x INTEGER)");
  for (int i = 1; i <= 10; ++i) {
    Ok("INSERT INTO n VALUES (" + std::to_string(i) + ")");
  }
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM n WHERE x > 5").integer(), 5);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM n WHERE x % 2 = 0").integer(), 5);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM n WHERE x > 3 AND x <= 7").integer(),
            4);
  EXPECT_EQ(Scalar("SELECT SUM(x * 2) FROM n").integer(), 110);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM n WHERE NOT x = 1").integer(), 9);
}

TEST_F(DatabaseTest, NullSemantics) {
  Ok("CREATE TABLE t (a INTEGER)");
  Ok("INSERT INTO t VALUES (1), (NULL), (3)");
  // NULL comparisons are unknown -> filtered out.
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM t WHERE a = 1").integer(), 1);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM t WHERE a != 1").integer(), 1);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM t WHERE a IS NULL").integer(), 1);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM t WHERE a IS NOT NULL").integer(),
            2);
  // COUNT(a) skips NULLs; COUNT(*) does not.
  EXPECT_EQ(Scalar("SELECT COUNT(a) FROM t").integer(), 2);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM t").integer(), 3);
  // SUM ignores NULLs.
  EXPECT_EQ(Scalar("SELECT SUM(a) FROM t").integer(), 4);
}

TEST_F(DatabaseTest, Aggregates) {
  Ok("CREATE TABLE s (v REAL)");
  Ok("INSERT INTO s VALUES (1.0), (2.0), (3.0), (4.0)");
  EXPECT_DOUBLE_EQ(Scalar("SELECT AVG(v) FROM s").real(), 2.5);
  EXPECT_DOUBLE_EQ(Scalar("SELECT MIN(v) FROM s").real(), 1.0);
  EXPECT_DOUBLE_EQ(Scalar("SELECT MAX(v) FROM s").real(), 4.0);
  EXPECT_DOUBLE_EQ(Scalar("SELECT SUM(v) FROM s").real(), 10.0);
  // Aggregates over an empty relation.
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM s WHERE v > 100").integer(), 0);
  EXPECT_TRUE(Scalar("SELECT SUM(v) FROM s WHERE v > 100").is_null());
  EXPECT_TRUE(Scalar("SELECT AVG(v) FROM s WHERE v > 100").is_null());
}

TEST_F(DatabaseTest, GroupByHavingOrder) {
  Ok("CREATE TABLE orders2 (cust INTEGER, price REAL)");
  Ok("INSERT INTO orders2 VALUES (1, 10.0), (1, 20.0), (2, 5.0), "
     "(3, 7.0), (3, 8.0), (3, 9.0)");
  QueryResult r = Q(
      "SELECT cust, COUNT(*) AS cn, AVG(price) AS av FROM orders2 "
      "GROUP BY cust ORDER BY cust");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][1].integer(), 2);
  EXPECT_DOUBLE_EQ(r.rows[0][2].real(), 15.0);
  EXPECT_EQ(r.rows[2][1].integer(), 3);
  EXPECT_DOUBLE_EQ(r.rows[2][2].real(), 8.0);

  r = Q("SELECT cust FROM orders2 GROUP BY cust HAVING COUNT(*) >= 2 "
        "ORDER BY cust DESC");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].integer(), 3);
  EXPECT_EQ(r.rows[1][0].integer(), 1);
}

TEST_F(DatabaseTest, BareColumnInAggregateQuery) {
  // SQLite-style: a non-aggregated, non-grouped column takes a value from
  // some row of the group (we define: the first).
  Ok("CREATE TABLE t (k INTEGER, v INTEGER)");
  Ok("INSERT INTO t VALUES (1, 100), (1, 200)");
  QueryResult r = Q("SELECT k, MAX(v), v FROM t GROUP BY k");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][1].integer(), 200);
  EXPECT_EQ(r.rows[0][2].integer(), 100);
}

TEST_F(DatabaseTest, DistinctAndLimit) {
  Ok("CREATE TABLE d (x INTEGER)");
  Ok("INSERT INTO d VALUES (1), (2), (2), (3), (3), (3)");
  QueryResult r = Q("SELECT DISTINCT x FROM d ORDER BY x");
  ASSERT_EQ(r.rows.size(), 3u);
  r = Q("SELECT x FROM d ORDER BY x DESC LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].integer(), 3);
  r = Q("SELECT x FROM d LIMIT 4");
  EXPECT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(Scalar("SELECT COUNT(DISTINCT x) FROM d").integer(), 3);
}

TEST_F(DatabaseTest, JoinWithTransientIndex) {
  Ok("CREATE TABLE part2 (pk INTEGER, ptype TEXT)");
  Ok("CREATE TABLE item2 (fk INTEGER, price REAL)");
  Ok("INSERT INTO part2 VALUES (1, 'TIN'), (2, 'GOLD'), (3, 'TIN')");
  Ok("INSERT INTO item2 VALUES (1, 10.0), (1, 5.0), (2, 100.0), (3, 2.0)");
  QueryResult r = Q(
      "SELECT SUM(price) AS revenue FROM item2, part2 "
      "WHERE pk = fk AND ptype = 'TIN'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][0].real(), 17.0);
  EXPECT_TRUE(db_->last_stats().exec.used_transient_index);
  EXPECT_GT(db_->last_stats().exec.index_build_us, -1);
}

TEST_F(DatabaseTest, JoinWithNativeIndex) {
  Ok("CREATE TABLE part2 (pk INTEGER, ptype TEXT)");
  Ok("CREATE TABLE item2 (fk INTEGER, price REAL)");
  Ok("CREATE INDEX item2_fk ON item2 (fk)");
  Ok("INSERT INTO part2 VALUES (1, 'TIN'), (2, 'GOLD')");
  Ok("INSERT INTO item2 VALUES (1, 10.0), (1, 5.0), (2, 100.0)");
  QueryResult r = Q(
      "SELECT SUM(price) FROM item2, part2 WHERE pk = fk AND ptype = 'TIN'");
  EXPECT_DOUBLE_EQ(r.rows[0][0].real(), 15.0);
  EXPECT_TRUE(db_->last_stats().exec.used_native_index);
  EXPECT_FALSE(db_->last_stats().exec.used_transient_index);
}

TEST_F(DatabaseTest, QualifiedColumnsAndAliases) {
  Ok("CREATE TABLE a (id INTEGER, v TEXT)");
  Ok("CREATE TABLE b (id INTEGER, w TEXT)");
  Ok("INSERT INTO a VALUES (1, 'av')");
  Ok("INSERT INTO b VALUES (1, 'bw')");
  QueryResult r = Q(
      "SELECT x.v, y.w FROM a x JOIN b y ON x.id = y.id");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].text(), "av");
  EXPECT_EQ(r.rows[0][1].text(), "bw");
  // Ambiguous unqualified column fails.
  EXPECT_FALSE(db_->Query("SELECT id FROM a x, b y").ok());
}

TEST_F(DatabaseTest, UpdateAndDelete) {
  Ok("CREATE TABLE t (id INTEGER, v INTEGER)");
  Ok("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)");
  Ok("UPDATE t SET v = v + 1 WHERE id >= 2");
  EXPECT_EQ(Scalar("SELECT SUM(v) FROM t").integer(), 10 + 21 + 31);
  Ok("DELETE FROM t WHERE id = 2");
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM t").integer(), 2);
  Ok("DELETE FROM t");
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM t").integer(), 0);
}

TEST_F(DatabaseTest, DeleteViaIndexKeepsIndexConsistent) {
  Ok("CREATE TABLE t (id INTEGER, v TEXT)");
  Ok("CREATE INDEX t_id ON t (id)");
  for (int i = 0; i < 50; ++i) {
    Ok("INSERT INTO t VALUES (" + std::to_string(i) + ", 'v')");
  }
  Ok("DELETE FROM t WHERE id = 25");
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM t").integer(), 49);
  // The index path must not see the deleted row either (join probe).
  Ok("CREATE TABLE probe (id INTEGER)");
  Ok("INSERT INTO probe VALUES (25), (26)");
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM probe, t WHERE t.id = probe.id")
                .integer(),
            1);
}

TEST_F(DatabaseTest, CreateTableAsSelect) {
  Ok("CREATE TABLE src (a INTEGER, b TEXT)");
  Ok("INSERT INTO src VALUES (1, 'x'), (2, 'y')");
  Ok("CREATE TABLE dst AS SELECT a * 10 AS a10, b FROM src");
  QueryResult r = Q("SELECT a10, b FROM dst ORDER BY a10");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].integer(), 10);
  EXPECT_EQ(r.rows[1][0].integer(), 20);
}

TEST_F(DatabaseTest, InsertSelect) {
  Ok("CREATE TABLE src (a INTEGER)");
  Ok("CREATE TABLE dst (a INTEGER)");
  Ok("INSERT INTO src VALUES (1), (2), (3)");
  Ok("INSERT INTO dst SELECT a * 2 FROM src WHERE a > 1");
  QueryResult r = Q("SELECT a FROM dst ORDER BY a");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].integer(), 4);
  EXPECT_EQ(r.rows[1][0].integer(), 6);
}

TEST_F(DatabaseTest, TransactionsRollback) {
  Ok("CREATE TABLE t (a INTEGER)");
  Ok("INSERT INTO t VALUES (1)");
  Ok("BEGIN");
  Ok("INSERT INTO t VALUES (2)");
  Ok("DELETE FROM t WHERE a = 1");
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM t").integer(), 1);
  Ok("ROLLBACK");
  QueryResult r = Q("SELECT a FROM t");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].integer(), 1);
}

TEST_F(DatabaseTest, RollbackOfDdl) {
  Ok("BEGIN");
  Ok("CREATE TABLE temp_t (a INTEGER)");
  Ok("INSERT INTO temp_t VALUES (1)");
  Ok("ROLLBACK");
  EXPECT_FALSE(db_->Query("SELECT * FROM temp_t").ok());
}

TEST_F(DatabaseTest, CommitWithSnapshotAndAsOf) {
  Ok("CREATE TABLE LoggedIn (l_userid TEXT, l_time TEXT, l_country TEXT)");
  Ok("INSERT INTO LoggedIn VALUES "
     "('UserA', '2008-11-09 13:23:44', 'USA'), "
     "('UserB', '2008-11-09 15:45:21', 'UK'), "
     "('UserC', '2008-11-09 15:45:21', 'USA')");
  Ok("BEGIN; COMMIT WITH SNAPSHOT;");
  EXPECT_EQ(db_->last_declared_snapshot(), 1u);

  Ok("BEGIN; DELETE FROM LoggedIn WHERE l_userid = 'UserA'; "
     "COMMIT WITH SNAPSHOT;");
  EXPECT_EQ(db_->last_declared_snapshot(), 2u);

  Ok("BEGIN; INSERT INTO LoggedIn VALUES "
     "('UserD', '2008-11-11 10:08:04', 'UK'); COMMIT WITH SNAPSHOT;");
  EXPECT_EQ(db_->last_declared_snapshot(), 3u);

  // The paper's Figure 1: snapshot states.
  EXPECT_EQ(Scalar("SELECT AS OF 1 COUNT(*) FROM LoggedIn").integer(), 3);
  EXPECT_EQ(Scalar("SELECT AS OF 2 COUNT(*) FROM LoggedIn").integer(), 2);
  EXPECT_EQ(Scalar("SELECT AS OF 3 COUNT(*) FROM LoggedIn").integer(), 3);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM LoggedIn").integer(), 3);

  // Snapshot 2 must not include UserA (reflects the declaring txn).
  EXPECT_EQ(Scalar("SELECT AS OF 2 COUNT(*) FROM LoggedIn "
                   "WHERE l_userid = 'UserA'").integer(), 0);
  // Snapshot 3 includes UserD; snapshot 2 does not.
  EXPECT_EQ(Scalar("SELECT AS OF 3 COUNT(*) FROM LoggedIn "
                   "WHERE l_userid = 'UserD'").integer(), 1);
  EXPECT_EQ(Scalar("SELECT AS OF 2 COUNT(*) FROM LoggedIn "
                   "WHERE l_userid = 'UserD'").integer(), 0);
}

TEST_F(DatabaseTest, AsOfSeesOldCatalog) {
  Ok("CREATE TABLE t (a INTEGER)");
  Ok("INSERT INTO t VALUES (1)");
  Ok("BEGIN; COMMIT WITH SNAPSHOT;");
  Ok("DROP TABLE t");
  EXPECT_FALSE(db_->Query("SELECT * FROM t").ok());
  // The dropped table still exists as of snapshot 1.
  EXPECT_EQ(Scalar("SELECT AS OF 1 COUNT(*) FROM t").integer(), 1);
}

TEST_F(DatabaseTest, AsOfUnknownSnapshotFails) {
  Ok("CREATE TABLE t (a INTEGER)");
  EXPECT_FALSE(db_->Query("SELECT AS OF 9 * FROM t").ok());
}

TEST_F(DatabaseTest, ScalarFunctionsAndUdf) {
  EXPECT_EQ(Scalar("SELECT ABS(-5)").integer(), 5);
  EXPECT_EQ(Scalar("SELECT LENGTH('hello')").integer(), 5);
  EXPECT_EQ(Scalar("SELECT UPPER('abc')").text(), "ABC");
  EXPECT_EQ(Scalar("SELECT SUBSTR('abcdef', 2, 3)").text(), "bcd");
  EXPECT_EQ(Scalar("SELECT COALESCE(NULL, NULL, 7)").integer(), 7);
  EXPECT_EQ(Scalar("SELECT IFNULL(NULL, 3)").integer(), 3);
  EXPECT_EQ(Scalar("SELECT TYPEOF('x')").text(), "TEXT");

  int calls = 0;
  db_->RegisterFunction("my_udf", 1, 1,
                        [&calls](const std::vector<Value>& args)
                            -> Result<Value> {
                          ++calls;
                          return Value::Integer(args[0].AsInt() * 3);
                        });
  EXPECT_EQ(Scalar("SELECT my_udf(4)").integer(), 12);
  EXPECT_EQ(calls, 1);

  // UDF invoked per row, like sqlite3 UDFs interposed on a SELECT.
  Ok("CREATE TABLE t (a INTEGER)");
  Ok("INSERT INTO t VALUES (1), (2), (3)");
  calls = 0;
  Q("SELECT my_udf(a) FROM t");
  EXPECT_EQ(calls, 3);
}

TEST_F(DatabaseTest, CurrentSnapshotFunction) {
  // Outside an RQL iteration it errors.
  EXPECT_FALSE(db_->Query("SELECT current_snapshot()").ok());
  db_->set_current_snapshot(5);
  EXPECT_EQ(Scalar("SELECT current_snapshot()").integer(), 5);
  db_->set_current_snapshot(retro::kNoSnapshot);
}

TEST_F(DatabaseTest, LikeOperator) {
  Ok("CREATE TABLE t (s TEXT)");
  Ok("INSERT INTO t VALUES ('STANDARD POLISHED TIN'), "
     "('SMALL PLATED COPPER'), ('STANDARD BRUSHED TIN')");
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM t WHERE s LIKE 'STANDARD%'")
                .integer(), 2);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM t WHERE s LIKE '%TIN'").integer(),
            2);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM t WHERE s LIKE '%PLATED%'")
                .integer(), 1);
}

TEST_F(DatabaseTest, OrderByAliasAndExpression) {
  Ok("CREATE TABLE t (a INTEGER, b INTEGER)");
  Ok("INSERT INTO t VALUES (1, 9), (2, 5), (3, 11)");
  QueryResult r = Q("SELECT a, b AS bee FROM t ORDER BY bee");
  EXPECT_EQ(r.rows[0][0].integer(), 2);
  r = Q("SELECT a, b FROM t ORDER BY a + b DESC");
  EXPECT_EQ(r.rows[0][0].integer(), 3);  // 3+7=10 first
}

TEST_F(DatabaseTest, SelectWithoutFrom) {
  QueryResult r = Q("SELECT 1 + 1, 'x'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].integer(), 2);
}

TEST_F(DatabaseTest, TableStats) {
  Ok("CREATE TABLE t (a INTEGER, b TEXT)");
  for (int i = 0; i < 200; ++i) {
    Ok("INSERT INTO t VALUES (" + std::to_string(i) + ", 'padpadpadpad')");
  }
  auto stats = db_->GetTableStats("t");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows, 200u);
  EXPECT_GT(stats->pages, 1u);
  EXPECT_EQ(stats->bytes, stats->pages * storage::kPageSize);
}

TEST_F(DatabaseTest, DropTableAndIfExists) {
  Ok("CREATE TABLE t (a INTEGER)");
  Ok("DROP TABLE t");
  EXPECT_FALSE(db_->Exec("DROP TABLE t").ok());
  Ok("DROP TABLE IF EXISTS t");
  Ok("CREATE TABLE IF NOT EXISTS u (a INTEGER)");
  Ok("CREATE TABLE IF NOT EXISTS u (a INTEGER)");
}

TEST_F(DatabaseTest, ErrorsDoNotCorruptState) {
  Ok("CREATE TABLE t (a INTEGER)");
  // Failing inserts roll back cleanly.
  EXPECT_FALSE(db_->Exec("INSERT INTO t VALUES (1, 2)").ok());
  EXPECT_FALSE(db_->Exec("INSERT INTO missing VALUES (1)").ok());
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM t").integer(), 0);
  Ok("INSERT INTO t VALUES (1)");
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM t").integer(), 1);
}

TEST_F(DatabaseTest, PersistsAcrossReopen) {
  Ok("CREATE TABLE t (a INTEGER)");
  Ok("INSERT INTO t VALUES (42)");
  Ok("BEGIN; COMMIT WITH SNAPSHOT;");
  Ok("UPDATE t SET a = 43");
  db_.reset();

  auto db = Database::Open(&env_, "test");
  ASSERT_TRUE(db.ok());
  db_ = std::move(*db);
  EXPECT_EQ(Scalar("SELECT a FROM t").integer(), 43);
  EXPECT_EQ(Scalar("SELECT AS OF 1 a FROM t").integer(), 42);
}

}  // namespace
}  // namespace rql::sql

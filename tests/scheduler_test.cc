// Unit tests for the run scheduler in isolation: FIFO-per-session
// fairness, one-run-per-session dispatch, bounded admission, worker
// budget reservation (grant floor of 1 against an empty pool), run and
// session cancellation, and shutdown draining.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "server/scheduler.h"

namespace rql::server {
namespace {

using Ticket = RunScheduler::Ticket;

/// A manually-released gate run bodies can block on, so tests control
/// exactly when a "run" finishes.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  void Open() {
    std::lock_guard<std::mutex> lock(mu);
    open = true;
    cv.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return open; });
  }
};

TEST(SchedulerTest, RunsCompleteAndAssignIncreasingRunIds) {
  RunScheduler scheduler({});
  std::atomic<int> executed{0};
  std::vector<std::shared_ptr<Ticket>> tickets;
  uint64_t prev = 0;
  for (int i = 0; i < 8; ++i) {
    auto ticket = scheduler.Submit(/*session_id=*/1, /*workers=*/1,
                                   [&](Ticket*) {
                                     executed.fetch_add(1);
                                     return Status::OK();
                                   });
    ASSERT_TRUE(ticket.ok());
    EXPECT_GT((*ticket)->run_id, prev);
    prev = (*ticket)->run_id;
    tickets.push_back(*ticket);
  }
  for (auto& t : tickets) EXPECT_TRUE(scheduler.Wait(t.get()).ok());
  EXPECT_EQ(executed.load(), 8);
  EXPECT_EQ(scheduler.completed(), 8);
  EXPECT_EQ(scheduler.queued(), 0);
  EXPECT_EQ(scheduler.active(), 0);
  scheduler.Shutdown();
}

TEST(SchedulerTest, OneRunPerSessionEvenWithFreeDispatchers) {
  RunScheduler::Options options;
  options.dispatch_threads = 4;
  RunScheduler scheduler(options);
  Gate gate;
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  auto body = [&](Ticket*) {
    int now = concurrent.fetch_add(1) + 1;
    int seen = peak.load();
    while (now > seen && !peak.compare_exchange_weak(seen, now)) {
    }
    gate.Wait();
    concurrent.fetch_sub(1);
    return Status::OK();
  };
  std::vector<std::shared_ptr<Ticket>> tickets;
  for (int i = 0; i < 4; ++i) {
    auto t = scheduler.Submit(/*session_id=*/7, 1, body);
    ASSERT_TRUE(t.ok());
    tickets.push_back(*t);
  }
  // Give the dispatchers every chance to (incorrectly) run two at once.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_LE(concurrent.load(), 1);
  gate.Open();
  for (auto& t : tickets) EXPECT_TRUE(scheduler.Wait(t.get()).ok());
  EXPECT_EQ(peak.load(), 1);  // same session never overlaps itself
  scheduler.Shutdown();
}

TEST(SchedulerTest, DistinctSessionsRunConcurrently) {
  RunScheduler::Options options;
  options.dispatch_threads = 3;
  RunScheduler scheduler(options);
  Gate gate;
  std::atomic<int> started{0};
  auto body = [&](Ticket*) {
    started.fetch_add(1);
    gate.Wait();
    return Status::OK();
  };
  std::vector<std::shared_ptr<Ticket>> tickets;
  for (uint64_t sid = 1; sid <= 3; ++sid) {
    auto t = scheduler.Submit(sid, 1, body);
    ASSERT_TRUE(t.ok());
    tickets.push_back(*t);
  }
  for (int i = 0; i < 400 && started.load() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(started.load(), 3);
  gate.Open();
  for (auto& t : tickets) EXPECT_TRUE(scheduler.Wait(t.get()).ok());
  scheduler.Shutdown();
}

TEST(SchedulerTest, AdmissionControlBoundsTheQueue) {
  RunScheduler::Options options;
  options.dispatch_threads = 1;
  options.queue_limit = 2;
  RunScheduler scheduler(options);
  Gate gate;
  auto blocker = scheduler.Submit(1, 1, [&](Ticket*) {
    gate.Wait();
    return Status::OK();
  });
  ASSERT_TRUE(blocker.ok());
  for (int i = 0; i < 400 && scheduler.active() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(scheduler.active(), 1);

  auto q1 = scheduler.Submit(2, 1, [](Ticket*) { return Status::OK(); });
  auto q2 = scheduler.Submit(3, 1, [](Ticket*) { return Status::OK(); });
  ASSERT_TRUE(q1.ok() && q2.ok());
  auto rejected = scheduler.Submit(4, 1, [](Ticket*) { return Status::OK(); });
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kAborted);
  EXPECT_EQ(scheduler.admission_rejects(), 1);

  gate.Open();
  EXPECT_TRUE(scheduler.Wait(blocker->get()).ok());
  EXPECT_TRUE(scheduler.Wait(q1->get()).ok());
  EXPECT_TRUE(scheduler.Wait(q2->get()).ok());
  scheduler.Shutdown();
}

TEST(SchedulerTest, WorkerBudgetCapsGrantsButNeverStarves) {
  RunScheduler::Options options;
  options.dispatch_threads = 3;
  options.worker_budget = 4;
  RunScheduler scheduler(options);
  Gate gate;
  std::atomic<int> started{0};
  std::atomic<int> g1{0}, g2{0}, g3{0};
  auto body = [&](std::atomic<int>* slot) {
    return [&, slot](Ticket* t) {
      slot->store(t->granted_workers);
      started.fetch_add(1);
      gate.Wait();
      return Status::OK();
    };
  };
  // Session 1 asks for more than the whole budget: capped to 4.
  auto t1 = scheduler.Submit(1, 8, body(&g1));
  ASSERT_TRUE(t1.ok());
  for (int i = 0; i < 400 && started.load() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // Sessions 2 and 3 arrive with the pool exhausted: both still dispatch
  // with the floor grant of one worker (which reserves nothing).
  auto t2 = scheduler.Submit(2, 4, body(&g2));
  auto t3 = scheduler.Submit(3, 4, body(&g3));
  ASSERT_TRUE(t2.ok() && t3.ok());
  for (int i = 0; i < 400 && started.load() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(started.load(), 3);
  EXPECT_EQ(g1.load(), 4);
  EXPECT_EQ(g2.load(), 1);
  EXPECT_EQ(g3.load(), 1);
  gate.Open();
  EXPECT_TRUE(scheduler.Wait(t1->get()).ok());
  EXPECT_TRUE(scheduler.Wait(t2->get()).ok());
  EXPECT_TRUE(scheduler.Wait(t3->get()).ok());

  // With the budget back in the pool, a fresh run gets a real grant again.
  std::atomic<int> g4{0};
  Gate gate2;
  std::atomic<int> started2{0};
  auto t4 = scheduler.Submit(4, 3, [&](Ticket* t) {
    g4.store(t->granted_workers);
    started2.fetch_add(1);
    gate2.Wait();
    return Status::OK();
  });
  ASSERT_TRUE(t4.ok());
  for (int i = 0; i < 400 && started2.load() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(g4.load(), 3);
  gate2.Open();
  EXPECT_TRUE(scheduler.Wait(t4->get()).ok());
  scheduler.Shutdown();
}

TEST(SchedulerTest, CancelQueuedRunNeverExecutesIt) {
  RunScheduler::Options options;
  options.dispatch_threads = 1;
  RunScheduler scheduler(options);
  Gate gate;
  auto blocker = scheduler.Submit(1, 1, [&](Ticket*) {
    gate.Wait();
    return Status::OK();
  });
  ASSERT_TRUE(blocker.ok());
  std::atomic<bool> ran{false};
  auto queued = scheduler.Submit(2, 1, [&](Ticket*) {
    ran.store(true);
    return Status::OK();
  });
  ASSERT_TRUE(queued.ok());
  scheduler.Cancel(*queued);
  gate.Open();
  Status status = scheduler.Wait(queued->get());
  EXPECT_EQ(status.code(), StatusCode::kAborted);
  EXPECT_FALSE(ran.load());
  EXPECT_TRUE(scheduler.Wait(blocker->get()).ok());
  EXPECT_GE(scheduler.cancelled(), 1);
  scheduler.Shutdown();
}

TEST(SchedulerTest, CancelRunningRunSetsTheCooperativeFlag) {
  RunScheduler scheduler({});
  std::atomic<bool> saw_flag{false};
  std::atomic<bool> running{false};
  auto t = scheduler.Submit(1, 1, [&](Ticket* ticket) {
    running.store(true);
    // Cooperative loop: poll the cancel flag like mechanism iterations do.
    for (int i = 0; i < 2000; ++i) {
      if (ticket->cancel.load()) {
        saw_flag.store(true);
        return Status::Aborted("run cancelled");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return Status::OK();
  });
  ASSERT_TRUE(t.ok());
  while (!running.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  scheduler.Cancel(*t);
  Status status = scheduler.Wait(t->get());
  EXPECT_EQ(status.code(), StatusCode::kAborted);
  EXPECT_TRUE(saw_flag.load());
  scheduler.Shutdown();
}

TEST(SchedulerTest, CancelSessionDrainsQueuedAndRunning) {
  RunScheduler::Options options;
  options.dispatch_threads = 2;
  RunScheduler scheduler(options);
  std::atomic<bool> running{false};
  auto r1 = scheduler.Submit(5, 1, [&](Ticket* ticket) {
    running.store(true);
    while (!ticket->cancel.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return Status::Aborted("run cancelled");
  });
  auto r2 = scheduler.Submit(5, 1, [](Ticket*) { return Status::OK(); });
  auto other = scheduler.Submit(6, 1, [](Ticket*) { return Status::OK(); });
  ASSERT_TRUE(r1.ok() && r2.ok() && other.ok());
  while (!running.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));

  scheduler.CancelSession(5);  // blocks until nothing of session 5 is inflight
  EXPECT_EQ(scheduler.Wait(r1->get()).code(), StatusCode::kAborted);
  EXPECT_EQ(scheduler.Wait(r2->get()).code(), StatusCode::kAborted);
  // The unrelated session is untouched.
  EXPECT_TRUE(scheduler.Wait(other->get()).ok());
  scheduler.Shutdown();
}

TEST(SchedulerTest, ShutdownRejectsNewWorkAndDrains) {
  RunScheduler scheduler({});
  auto t = scheduler.Submit(1, 1, [](Ticket*) { return Status::OK(); });
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(scheduler.Wait(t->get()).ok());
  scheduler.Shutdown();
  auto after = scheduler.Submit(1, 1, [](Ticket*) { return Status::OK(); });
  EXPECT_FALSE(after.ok());
  scheduler.Shutdown();  // idempotent
}

}  // namespace
}  // namespace rql::server

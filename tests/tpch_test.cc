#include "tpch/tpch.h"

#include <gtest/gtest.h>

#include "tpch/workload.h"

namespace rql::tpch {
namespace {

class TpchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = sql::Database::Open(&env_, "tpch");
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    TpchConfig config;
    config.scale_factor = 0.001;  // 1500 orders, tiny but structured
    gen_ = std::make_unique<TpchGenerator>(db_.get(), config);
    ASSERT_TRUE(gen_->CreateSchema().ok());
    ASSERT_TRUE(gen_->Populate().ok());
  }

  int64_t Count(const std::string& table) {
    auto v = db_->QueryScalar("SELECT COUNT(*) FROM " + table);
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    return v.ok() ? v->AsInt() : -1;
  }

  storage::InMemoryEnv env_;
  std::unique_ptr<sql::Database> db_;
  std::unique_ptr<TpchGenerator> gen_;
};

TEST_F(TpchTest, PopulateCounts) {
  EXPECT_EQ(Count("part"), 200);
  EXPECT_EQ(Count("customer"), 150);
  EXPECT_EQ(Count("orders"), 1500);
  // Lineitems average ~4 per order.
  int64_t lineitems = Count("lineitem");
  EXPECT_GT(lineitems, 1500 * 2);
  EXPECT_LT(lineitems, 1500 * 8);
}

TEST_F(TpchTest, DataShapesMatchQueries) {
  // The paper's Qq_io predicate: open orders exist but are a strict subset.
  int64_t open = db_->QueryScalar(
      "SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'O'")->AsInt();
  EXPECT_GT(open, 0);
  EXPECT_LT(open, 1500);
  // Order dates span the TPC-H range and compare lexicographically.
  int64_t early = db_->QueryScalar(
      "SELECT COUNT(*) FROM orders WHERE o_orderdate < '1995-01-01'")
      ->AsInt();
  EXPECT_GT(early, 0);
  EXPECT_LT(early, 1500);
  // Part types come from the TPC-H grammar.
  int64_t typed = db_->QueryScalar(
      "SELECT COUNT(*) FROM part WHERE p_type LIKE '% %'")->AsInt();
  EXPECT_EQ(typed, 200);
}

TEST_F(TpchTest, QqCpuJoinRuns) {
  auto revenue = db_->QueryScalar(
      "SELECT SUM(l_extendedprice) AS revenue FROM lineitem, part "
      "WHERE p_partkey = l_partkey AND p_type LIKE 'STANDARD%'");
  ASSERT_TRUE(revenue.ok()) << revenue.status().ToString();
  EXPECT_FALSE(revenue->is_null());
  EXPECT_GT(revenue->AsDouble(), 0);
}

TEST_F(TpchTest, RefreshFunctionsRotateKeySpace) {
  int64_t before = Count("orders");
  ASSERT_TRUE(gen_->RefreshDelete(100).ok());
  EXPECT_EQ(Count("orders"), before - 100);
  ASSERT_TRUE(gen_->RefreshInsert(100).ok());
  EXPECT_EQ(Count("orders"), before);
  // Orphaned lineitems must not exist: every lineitem joins to an order.
  int64_t lineitems = Count("lineitem");
  int64_t joined = db_->QueryScalar(
      "SELECT COUNT(*) FROM lineitem, orders WHERE o_orderkey = l_orderkey")
      ->AsInt();
  EXPECT_EQ(lineitems, joined);
  // Oldest keys are gone, new keys are present.
  EXPECT_EQ(db_->QueryScalar("SELECT MIN(o_orderkey) FROM orders")->AsInt(),
            101);
  EXPECT_EQ(db_->QueryScalar("SELECT MAX(o_orderkey) FROM orders")->AsInt(),
            1600);
}

TEST_F(TpchTest, RotationKeepsDatabaseSizeStable) {
  uint32_t base = db_->store()->page_store()->allocated_pages();
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(gen_->RefreshDelete(150).ok());
    ASSERT_TRUE(gen_->RefreshInsert(150).ok());
  }
  uint32_t after = db_->store()->page_store()->allocated_pages();
  // A full overwrite of 1500 orders must not grow the database by more
  // than a small slack (B-tree lazy deletion plus partially-empty pages).
  EXPECT_LT(after, base + base / 3);
}

TEST(WorkloadTest, BuildHistoryDeclaresSnapshots) {
  storage::InMemoryEnv env;
  HistoryConfig config;
  config.tpch.scale_factor = 0.001;
  config.workload = WorkloadSpec::UW30();
  config.snapshots = 8;
  auto history = BuildHistory(&env, "h", config);
  ASSERT_TRUE(history.ok()) << history.status().ToString();
  EXPECT_EQ((*history)->last_snapshot(), 8u);

  auto snap_count =
      (*history)->meta()->QueryScalar("SELECT COUNT(*) FROM SnapIds");
  ASSERT_TRUE(snap_count.ok());
  EXPECT_EQ(snap_count->AsInt(), 8);

  // Every snapshot holds a consistent TPC-H state with the same order
  // count (constant-rate refresh).
  for (int s = 1; s <= 8; ++s) {
    auto count = (*history)->data()->QueryScalar(
        "SELECT AS OF " + std::to_string(s) + " COUNT(*) FROM orders");
    ASSERT_TRUE(count.ok()) << count.status().ToString();
    EXPECT_EQ(count->AsInt(), 1500) << "snapshot " << s;
  }
}

TEST(WorkloadTest, ReopenExistingHistory) {
  storage::InMemoryEnv env;
  HistoryConfig config;
  config.tpch.scale_factor = 0.001;
  config.snapshots = 4;
  {
    auto history = BuildHistory(&env, "h", config);
    ASSERT_TRUE(history.ok()) << history.status().ToString();
  }
  auto reopened = BuildHistory(&env, "h", config);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->last_snapshot(), 4u);
  // Refreshes continue from the recovered key range.
  ASSERT_TRUE((*reopened)->generator()->RefreshDelete(10).ok());
  ASSERT_TRUE((*reopened)->generator()->RefreshInsert(10).ok());
  auto count =
      (*reopened)->data()->QueryScalar("SELECT COUNT(*) FROM orders");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->AsInt(), 1500);
}

TEST(WorkloadTest, QsIntervalGeneratesCorrectSets) {
  storage::InMemoryEnv env;
  HistoryConfig config;
  config.tpch.scale_factor = 0.001;
  config.snapshots = 12;
  auto history = BuildHistory(&env, "h", config);
  ASSERT_TRUE(history.ok()) << history.status().ToString();

  auto r = (*history)->meta()->Query((*history)->QsInterval(3, 4));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 4u);
  EXPECT_EQ(r->rows[0][0].integer(), 3);
  EXPECT_EQ(r->rows[3][0].integer(), 6);

  r = (*history)->meta()->Query((*history)->QsInterval(2, 3, /*step=*/4));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 3u);
  EXPECT_EQ(r->rows[0][0].integer(), 2);
  EXPECT_EQ(r->rows[1][0].integer(), 6);
  EXPECT_EQ(r->rows[2][0].integer(), 10);
}

TEST(WorkloadTest, SpecOrdersPerSnapshot) {
  EXPECT_EQ(WorkloadSpec::UW30().OrdersPerSnapshot(1500000), 30000);
  EXPECT_EQ(WorkloadSpec::UW15().OrdersPerSnapshot(1500000), 15000);
  EXPECT_EQ(WorkloadSpec::UW7_5().OrdersPerSnapshot(1500000), 7500);
  EXPECT_EQ(WorkloadSpec::UW60().OrdersPerSnapshot(1500000), 60000);
}

}  // namespace
}  // namespace rql::tpch

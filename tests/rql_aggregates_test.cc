#include "rql/aggregates.h"

#include <gtest/gtest.h>

namespace rql {
namespace {

using sql::Value;

TEST(RqlAggFuncTest, ParseNames) {
  EXPECT_EQ(*RqlAggFuncFromName("MIN"), RqlAggFunc::kMin);
  EXPECT_EQ(*RqlAggFuncFromName("max"), RqlAggFunc::kMax);
  EXPECT_EQ(*RqlAggFuncFromName("Sum"), RqlAggFunc::kSum);
  EXPECT_EQ(*RqlAggFuncFromName("count"), RqlAggFunc::kCount);
  EXPECT_EQ(*RqlAggFuncFromName("AVG"), RqlAggFunc::kAvg);
  EXPECT_FALSE(RqlAggFuncFromName("median").ok());
  EXPECT_EQ(RqlAggFuncFromName("count distinct").status().code(),
            StatusCode::kNotSupported);
}

TEST(RqlAggFuncTest, MonoidClassification) {
  EXPECT_TRUE(IsMonoid(RqlAggFunc::kMin));
  EXPECT_TRUE(IsMonoid(RqlAggFunc::kMax));
  EXPECT_TRUE(IsMonoid(RqlAggFunc::kSum));
  EXPECT_TRUE(IsMonoid(RqlAggFunc::kCount));
  EXPECT_FALSE(IsMonoid(RqlAggFunc::kAvg));
}

TEST(RqlCombineTest, NullIsIdentity) {
  Value v = Value::Integer(5);
  EXPECT_EQ(RqlCombine(RqlAggFunc::kMin, Value::Null(), v)->integer(), 5);
  EXPECT_EQ(RqlCombine(RqlAggFunc::kSum, v, Value::Null())->integer(), 5);
  EXPECT_TRUE(
      RqlCombine(RqlAggFunc::kMax, Value::Null(), Value::Null())->is_null());
}

TEST(RqlCombineTest, MinMaxSum) {
  Value a = Value::Integer(3), b = Value::Integer(8);
  EXPECT_EQ(RqlCombine(RqlAggFunc::kMin, a, b)->integer(), 3);
  EXPECT_EQ(RqlCombine(RqlAggFunc::kMax, a, b)->integer(), 8);
  EXPECT_EQ(RqlCombine(RqlAggFunc::kSum, a, b)->integer(), 11);
  // Mixed int/real sum promotes to real.
  EXPECT_DOUBLE_EQ(
      RqlCombine(RqlAggFunc::kSum, a, Value::Real(0.5))->real(), 3.5);
  // Text min/max works (timestamps).
  EXPECT_EQ(RqlCombine(RqlAggFunc::kMin, Value::Text("2008-11-11"),
                       Value::Text("2008-11-09"))
                ->text(),
            "2008-11-09");
}

TEST(RqlCombineTest, CountCountsNonNull) {
  Value acc = Value::Null();
  for (int i = 0; i < 5; ++i) {
    acc = *RqlCombine(RqlAggFunc::kCount, acc, Value::Integer(100 + i));
  }
  acc = *RqlCombine(RqlAggFunc::kCount, acc, Value::Null());
  EXPECT_EQ(acc.integer(), 5);
}

TEST(RqlCombineTest, SumRejectsText) {
  EXPECT_FALSE(
      RqlCombine(RqlAggFunc::kSum, Value::Integer(1), Value::Text("x")).ok());
}

TEST(RqlCombineTest, AvgMustUseAvgState) {
  EXPECT_FALSE(
      RqlCombine(RqlAggFunc::kAvg, Value::Integer(1), Value::Integer(2)).ok());
}

// Property: the combine really is associative and commutative for the
// monoid functions over a sample of values.
class MonoidPropertyTest
    : public ::testing::TestWithParam<RqlAggFunc> {};

TEST_P(MonoidPropertyTest, AssociativeAndCommutative) {
  RqlAggFunc func = GetParam();
  std::vector<Value> samples = {Value::Null(), Value::Integer(-3),
                                Value::Integer(0), Value::Integer(7),
                                Value::Integer(100)};
  if (func != RqlAggFunc::kCount && func != RqlAggFunc::kSum) {
    samples.push_back(Value::Text("aaa"));
    samples.push_back(Value::Text("zzz"));
  }
  for (const Value& a : samples) {
    for (const Value& b : samples) {
      if (func != RqlAggFunc::kCount) {
        // Commutativity (count is a fold counter, not symmetric).
        auto ab = RqlCombine(func, a, b);
        auto ba = RqlCombine(func, b, a);
        ASSERT_TRUE(ab.ok() && ba.ok());
        EXPECT_EQ(sql::CompareValues(*ab, *ba), 0);
      }
      for (const Value& c : samples) {
        if (func == RqlAggFunc::kCount) continue;
        auto left = RqlCombine(func, *RqlCombine(func, a, b), c);
        auto right = RqlCombine(func, a, *RqlCombine(func, b, c));
        ASSERT_TRUE(left.ok() && right.ok());
        EXPECT_EQ(sql::CompareValues(*left, *right), 0)
            << RqlAggFuncName(func);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Monoids, MonoidPropertyTest,
                         ::testing::Values(RqlAggFunc::kMin, RqlAggFunc::kMax,
                                           RqlAggFunc::kSum,
                                           RqlAggFunc::kCount),
                         [](const auto& info) {
                           return std::string(RqlAggFuncName(info.param));
                         });

TEST(AvgStateTest, RunningAverage) {
  AvgState avg;
  EXPECT_TRUE(avg.Final().is_null());
  avg.Add(Value::Integer(2));
  avg.Add(Value::Integer(4));
  avg.Add(Value::Null());  // ignored
  avg.Add(Value::Real(6.0));
  EXPECT_DOUBLE_EQ(avg.Final().real(), 4.0);
}

}  // namespace
}  // namespace rql

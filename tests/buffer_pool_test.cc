#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace rql::storage {
namespace {

Page MakePage(uint32_t tag) {
  Page p;
  p.Zero();
  p.WriteU32(0, tag);
  return p;
}

BufferPool::Loader TagLoader(int* loads) {
  return [loads](uint64_t key, Page* page) {
    if (loads != nullptr) ++*loads;
    page->Zero();
    page->WriteU32(0, static_cast<uint32_t>(key * 10));
    return Status::OK();
  };
}

TEST(BufferPoolTest, MissThenHit) {
  BufferPool pool(4);
  int loads = 0;
  auto loader = TagLoader(&loads);

  auto r1 = pool.Get(1, loader);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ((*r1)->ReadU32(0), 10u);
  EXPECT_EQ(loads, 1);
  EXPECT_EQ(pool.stats().misses, 1);

  auto r2 = pool.Get(1, loader);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(loads, 1);
  EXPECT_EQ(pool.stats().hits, 1);
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsed) {
  // Exact LRU order is only defined within a shard.
  BufferPool pool(2, /*shards=*/1);
  int loads = 0;
  auto loader = TagLoader(&loads);

  ASSERT_TRUE(pool.Get(1, loader).ok());
  ASSERT_TRUE(pool.Get(2, loader).ok());
  ASSERT_TRUE(pool.Get(1, loader).ok());  // touch 1 -> 2 is LRU
  ASSERT_TRUE(pool.Get(3, loader).ok());  // evicts 2
  EXPECT_EQ(pool.stats().evictions, 1);
  EXPECT_FALSE(pool.Lookup(2));
  EXPECT_TRUE(pool.Lookup(1));
  EXPECT_TRUE(pool.Lookup(3));
}

TEST(BufferPoolTest, UnboundedNeverEvicts) {
  BufferPool pool(0);
  auto loader = TagLoader(nullptr);
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(pool.Get(k, loader).ok());
  }
  EXPECT_EQ(pool.size(), 1000u);
  EXPECT_EQ(pool.stats().evictions, 0);
}

TEST(BufferPoolTest, PutOverwrites) {
  BufferPool pool(4);
  pool.Put(5, MakePage(111));
  EXPECT_EQ(pool.Lookup(5)->ReadU32(0), 111u);
  pool.Put(5, MakePage(222));
  EXPECT_EQ(pool.Lookup(5)->ReadU32(0), 222u);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(BufferPoolTest, EraseAndClear) {
  BufferPool pool(4);
  pool.Put(1, MakePage(1));
  pool.Put(2, MakePage(2));
  pool.Erase(1);
  EXPECT_FALSE(pool.Lookup(1));
  EXPECT_TRUE(pool.Lookup(2));
  pool.Clear();
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_FALSE(pool.Lookup(2));
}

TEST(BufferPoolTest, LoaderErrorPropagates) {
  BufferPool pool(4);
  auto r = pool.Get(9, [](uint64_t, Page*) {
    return Status::IoError("bad sector");
  });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  // A failed load must not leave a cache entry behind.
  EXPECT_FALSE(pool.Lookup(9));
}

TEST(BufferPoolTest, CapacityShrinkTakesEffectOnNextInsert) {
  // Shrinks apply per shard as each admits its next page; a single shard
  // makes the pool-wide bound observable after one insert.
  BufferPool pool(8, /*shards=*/1);
  auto loader = TagLoader(nullptr);
  for (uint64_t k = 0; k < 8; ++k) ASSERT_TRUE(pool.Get(k, loader).ok());
  pool.set_capacity(2);
  ASSERT_TRUE(pool.Get(100, loader).ok());
  EXPECT_LE(pool.size(), 2u);
}

TEST(BufferPoolTest, ShardedCapacityNeverExceedsTotal) {
  BufferPool pool(8, /*shards=*/4);
  auto loader = TagLoader(nullptr);
  for (uint64_t k = 0; k < 256; ++k) ASSERT_TRUE(pool.Get(k, loader).ok());
  EXPECT_LE(pool.size(), 8u);
}

TEST(BufferPoolTest, PinSurvivesEvictionAndClear) {
  BufferPool pool(1, /*shards=*/1);
  int loads = 0;
  auto loader = TagLoader(&loads);

  auto pinned = pool.Get(1, loader);
  ASSERT_TRUE(pinned.ok());
  PinnedPage pin = *pinned;

  // Evict key 1, overwrite the frame's key-space, and clear the pool: the
  // pinned frame must not be recycled under the reader.
  ASSERT_TRUE(pool.Get(2, loader).ok());
  EXPECT_EQ(pool.stats().evictions, 1);
  EXPECT_FALSE(pool.Lookup(1));
  pool.Put(1, MakePage(999));
  pool.Clear();

  EXPECT_EQ(pin->ReadU32(0), 10u);
  EXPECT_EQ((*pin).ReadU32(0), 10u);
}

TEST(BufferPoolTest, PinSurvivesOverwrite) {
  BufferPool pool(4);
  pool.Put(7, MakePage(1));
  PinnedPage pin = pool.Lookup(7);
  ASSERT_TRUE(pin);
  pool.Put(7, MakePage(2));
  EXPECT_EQ(pin->ReadU32(0), 1u);          // old value, still pinned
  EXPECT_EQ(pool.Lookup(7)->ReadU32(0), 2u);  // new value in the frame
}

TEST(BufferPoolTest, SingleFlightCoalescesConcurrentMisses) {
  BufferPool pool(0);
  std::atomic<int> loads{0};
  auto slow_loader = [&](uint64_t key, Page* page) {
    ++loads;
    // Hold the load open until a waiter has actually coalesced, so the
    // assertions below are deterministic (bounded by a safety timeout).
    for (int i = 0; i < 5000 && pool.stats().coalesced_loads == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    page->Zero();
    page->WriteU32(0, static_cast<uint32_t>(key + 1));
    return Status::OK();
  };

  constexpr int kThreads = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      auto r = pool.Get(42, slow_loader);
      if (r.ok() && (*r)->ReadU32(0) == 43u) ++ok;
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(ok.load(), kThreads);
  // All racing misses coalesced onto one loader invocation: one thread
  // claimed the in-flight load, every other thread either waited on it or
  // hit the published entry afterwards.
  EXPECT_EQ(loads.load(), 1);
  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.misses + stats.hits + stats.coalesced_loads, kThreads);
  EXPECT_GE(stats.coalesced_loads, 1);
}

TEST(BufferPoolTest, SingleFlightPropagatesLoadErrorToWaiters) {
  BufferPool pool(0);
  std::atomic<int> loads{0};
  auto failing_loader = [&loads](uint64_t, Page*) {
    ++loads;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return Status::IoError("bad sector");
  };

  constexpr int kThreads = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      auto r = pool.Get(7, failing_loader);
      if (!r.ok() && r.status().code() == StatusCode::kIoError) ++failures;
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), kThreads);
  EXPECT_FALSE(pool.Lookup(7));
  // Coalesced waiters fail with the owner's status without re-loading;
  // only threads that arrived after the failure published may retry.
  EXPECT_LE(loads.load(), kThreads);
}

TEST(BufferPoolTest, ConcurrentGetsReturnCorrectContent) {
  BufferPool pool(64);
  auto loader = TagLoader(nullptr);
  constexpr int kThreads = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      uint64_t key = static_cast<uint64_t>(t);
      for (int i = 0; i < 2000; ++i) {
        key = (key * 1103515245 + 12345) % 200;  // thrash across shards
        auto r = pool.Get(key, loader);
        if (!r.ok() || (*r)->ReadU32(0) != static_cast<uint32_t>(key * 10)) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_LE(pool.size(), 64u);
}

}  // namespace
}  // namespace rql::storage

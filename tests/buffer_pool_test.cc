#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

namespace rql::storage {
namespace {

Page MakePage(uint32_t tag) {
  Page p;
  p.Zero();
  p.WriteU32(0, tag);
  return p;
}

BufferPool::Loader TagLoader(int* loads) {
  return [loads](uint64_t key, Page* page) {
    if (loads != nullptr) ++*loads;
    page->Zero();
    page->WriteU32(0, static_cast<uint32_t>(key * 10));
    return Status::OK();
  };
}

TEST(BufferPoolTest, MissThenHit) {
  BufferPool pool(4);
  int loads = 0;
  auto loader = TagLoader(&loads);

  auto r1 = pool.Get(1, loader);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ((*r1)->ReadU32(0), 10u);
  EXPECT_EQ(loads, 1);
  EXPECT_EQ(pool.stats().misses, 1);

  auto r2 = pool.Get(1, loader);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(loads, 1);
  EXPECT_EQ(pool.stats().hits, 1);
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsed) {
  BufferPool pool(2);
  int loads = 0;
  auto loader = TagLoader(&loads);

  ASSERT_TRUE(pool.Get(1, loader).ok());
  ASSERT_TRUE(pool.Get(2, loader).ok());
  ASSERT_TRUE(pool.Get(1, loader).ok());  // touch 1 -> 2 is LRU
  ASSERT_TRUE(pool.Get(3, loader).ok());  // evicts 2
  EXPECT_EQ(pool.stats().evictions, 1);
  EXPECT_EQ(pool.Lookup(2), nullptr);
  EXPECT_NE(pool.Lookup(1), nullptr);
  EXPECT_NE(pool.Lookup(3), nullptr);
}

TEST(BufferPoolTest, UnboundedNeverEvicts) {
  BufferPool pool(0);
  auto loader = TagLoader(nullptr);
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(pool.Get(k, loader).ok());
  }
  EXPECT_EQ(pool.size(), 1000u);
  EXPECT_EQ(pool.stats().evictions, 0);
}

TEST(BufferPoolTest, PutOverwrites) {
  BufferPool pool(4);
  pool.Put(5, MakePage(111));
  EXPECT_EQ(pool.Lookup(5)->ReadU32(0), 111u);
  pool.Put(5, MakePage(222));
  EXPECT_EQ(pool.Lookup(5)->ReadU32(0), 222u);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(BufferPoolTest, EraseAndClear) {
  BufferPool pool(4);
  pool.Put(1, MakePage(1));
  pool.Put(2, MakePage(2));
  pool.Erase(1);
  EXPECT_EQ(pool.Lookup(1), nullptr);
  EXPECT_NE(pool.Lookup(2), nullptr);
  pool.Clear();
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.Lookup(2), nullptr);
}

TEST(BufferPoolTest, LoaderErrorPropagates) {
  BufferPool pool(4);
  auto r = pool.Get(9, [](uint64_t, Page*) {
    return Status::IoError("bad sector");
  });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  // A failed load must not leave a cache entry behind.
  EXPECT_EQ(pool.Lookup(9), nullptr);
}

TEST(BufferPoolTest, CapacityShrinkTakesEffectOnNextInsert) {
  BufferPool pool(8);
  auto loader = TagLoader(nullptr);
  for (uint64_t k = 0; k < 8; ++k) ASSERT_TRUE(pool.Get(k, loader).ok());
  pool.set_capacity(2);
  ASSERT_TRUE(pool.Get(100, loader).ok());
  EXPECT_LE(pool.size(), 2u);
}

}  // namespace
}  // namespace rql::storage

#include "sql/btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "retro/snapshot_store.h"

namespace rql::sql {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto store = retro::SnapshotStore::Open(&env_, "t");
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    auto root = BTree::Create(store_.get());
    ASSERT_TRUE(root.ok());
    root_ = *root;
    tree_ = std::make_unique<BTree>(store_.get(), root_);
  }

  std::vector<std::pair<Row, uint64_t>> ScanAll() {
    std::vector<std::pair<Row, uint64_t>> out;
    auto it = BTree::SeekFirst(store_.get(), root_);
    EXPECT_TRUE(it.ok());
    for (; it->Valid(); it->Next()) {
      out.emplace_back(it->key(), it->value());
    }
    EXPECT_TRUE(it->status().ok()) << it->status().ToString();
    return out;
  }

  storage::InMemoryEnv env_;
  std::unique_ptr<retro::SnapshotStore> store_;
  storage::PageId root_ = storage::kInvalidPageId;
  std::unique_ptr<BTree> tree_;
};

Row IntKey(int64_t v) { return {Value::Integer(v)}; }

TEST_F(BTreeTest, InsertLookupSmall) {
  ASSERT_TRUE(tree_->Insert(IntKey(5), 50).ok());
  ASSERT_TRUE(tree_->Insert(IntKey(1), 10).ok());
  ASSERT_TRUE(tree_->Insert(IntKey(3), 30).ok());
  auto v = tree_->Lookup(IntKey(3));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 30u);
  EXPECT_FALSE(tree_->Lookup(IntKey(4)).ok());
}

TEST_F(BTreeTest, DuplicateKeyRejected) {
  ASSERT_TRUE(tree_->Insert(IntKey(7), 1).ok());
  Status s = tree_->Insert(IntKey(7), 2);
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST_F(BTreeTest, InOrderIterationAfterManyInserts) {
  // Enough keys to force multiple levels of splits.
  Random rng(7);
  std::vector<int64_t> keys;
  for (int64_t i = 0; i < 5000; ++i) keys.push_back(i);
  // Shuffle.
  for (size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.Uniform(i)]);
  }
  for (int64_t k : keys) {
    ASSERT_TRUE(tree_->Insert(IntKey(k), static_cast<uint64_t>(k * 2)).ok())
        << k;
  }
  auto all = ScanAll();
  ASSERT_EQ(all.size(), 5000u);
  for (int64_t i = 0; i < 5000; ++i) {
    EXPECT_EQ(all[static_cast<size_t>(i)].first[0].integer(), i);
    EXPECT_EQ(all[static_cast<size_t>(i)].second,
              static_cast<uint64_t>(i * 2));
  }
}

TEST_F(BTreeTest, RootPageIdStaysStable) {
  storage::PageId original = tree_->root();
  for (int64_t i = 0; i < 3000; ++i) {
    ASSERT_TRUE(tree_->Insert(IntKey(i), 1).ok());
  }
  EXPECT_EQ(tree_->root(), original);
  // The tree must have split into multiple pages.
  auto pages = BTree::CountPages(store_.get(), root_);
  ASSERT_TRUE(pages.ok());
  EXPECT_GT(*pages, 3u);
}

TEST_F(BTreeTest, SeekLowerBound) {
  for (int64_t i = 0; i < 100; i += 10) {
    ASSERT_TRUE(tree_->Insert(IntKey(i), static_cast<uint64_t>(i)).ok());
  }
  auto it = BTree::Seek(store_.get(), root_, IntKey(35));
  ASSERT_TRUE(it.ok());
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key()[0].integer(), 40);
  it = BTree::Seek(store_.get(), root_, IntKey(90));
  ASSERT_TRUE(it.ok());
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key()[0].integer(), 90);
  it = BTree::Seek(store_.get(), root_, IntKey(91));
  ASSERT_TRUE(it.ok());
  EXPECT_FALSE(it->Valid());
}

TEST_F(BTreeTest, PrefixSeekOnCompositeKeys) {
  // Secondary-index shape: (col value, rid) -> rid.
  for (int64_t col = 0; col < 20; ++col) {
    for (int64_t rid = 0; rid < 5; ++rid) {
      Row key = {Value::Integer(col), Value::Integer(rid)};
      ASSERT_TRUE(
          tree_->Insert(key, static_cast<uint64_t>(col * 100 + rid)).ok());
    }
  }
  // Probe col == 7 by prefix.
  auto it = BTree::Seek(store_.get(), root_, IntKey(7));
  ASSERT_TRUE(it.ok());
  int found = 0;
  for (; it->Valid(); it->Next()) {
    if (it->key()[0].integer() != 7) break;
    EXPECT_EQ(it->value(), static_cast<uint64_t>(700 + found));
    ++found;
  }
  EXPECT_EQ(found, 5);
}

TEST_F(BTreeTest, DeleteRemovesKeys) {
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree_->Insert(IntKey(i), static_cast<uint64_t>(i)).ok());
  }
  for (int64_t i = 0; i < 1000; i += 2) {
    ASSERT_TRUE(tree_->Delete(IntKey(i)).ok());
  }
  EXPECT_FALSE(tree_->Lookup(IntKey(0)).ok());
  EXPECT_TRUE(tree_->Lookup(IntKey(1)).ok());
  auto all = ScanAll();
  ASSERT_EQ(all.size(), 500u);
  for (const auto& [key, value] : all) {
    EXPECT_EQ(key[0].integer() % 2, 1);
  }
  EXPECT_FALSE(tree_->Delete(IntKey(0)).ok());  // already gone
}

TEST_F(BTreeTest, MixedTypeKeysOrderCorrectly) {
  ASSERT_TRUE(tree_->Insert({Value::Text("b")}, 4).ok());
  ASSERT_TRUE(tree_->Insert({Value::Integer(10)}, 2).ok());
  ASSERT_TRUE(tree_->Insert({Value::Null()}, 1).ok());
  ASSERT_TRUE(tree_->Insert({Value::Real(10.5)}, 3).ok());
  auto all = ScanAll();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].second, 1u);  // NULL first
  EXPECT_EQ(all[1].second, 2u);  // 10
  EXPECT_EQ(all[2].second, 3u);  // 10.5
  EXPECT_EQ(all[3].second, 4u);  // text last
}

TEST_F(BTreeTest, TextKeysWithSplits) {
  Random rng(11);
  std::vector<std::string> keys;
  for (int i = 0; i < 2000; ++i) {
    keys.push_back("key-" + std::to_string(i * 7919 % 100000) + "-" +
                   rng.NextString(20));
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(
        tree_->Insert({Value::Text(keys[i])}, static_cast<uint64_t>(i)).ok());
  }
  auto all = ScanAll();
  ASSERT_EQ(all.size(), keys.size());
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1].first[0].text(), all[i].first[0].text());
  }
  // Every key must be findable.
  for (size_t i = 0; i < keys.size(); i += 97) {
    auto v = tree_->Lookup({Value::Text(keys[i])});
    ASSERT_TRUE(v.ok()) << keys[i];
    EXPECT_EQ(*v, i);
  }
}

TEST_F(BTreeTest, RandomInsertDeleteProperty) {
  Random rng(123);
  std::vector<int64_t> live;
  for (int round = 0; round < 3000; ++round) {
    if (live.empty() || rng.Bernoulli(0.6)) {
      int64_t k = static_cast<int64_t>(rng.Uniform(100000));
      Status s = tree_->Insert(IntKey(k), static_cast<uint64_t>(k));
      if (s.ok()) {
        live.push_back(k);
      } else {
        ASSERT_EQ(s.code(), StatusCode::kAlreadyExists);
      }
    } else {
      size_t pick = rng.Uniform(live.size());
      int64_t k = live[pick];
      ASSERT_TRUE(tree_->Delete(IntKey(k)).ok());
      live.erase(live.begin() + static_cast<long>(pick));
    }
  }
  std::sort(live.begin(), live.end());
  auto all = ScanAll();
  ASSERT_EQ(all.size(), live.size());
  for (size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(all[i].first[0].integer(), live[i]);
  }
}

TEST_F(BTreeTest, SnapshotViewSeesOldIndexState) {
  for (int64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree_->Insert(IntKey(i), static_cast<uint64_t>(i)).ok());
  }
  auto snap = store_->DeclareSnapshot();
  ASSERT_TRUE(snap.ok());
  for (int64_t i = 0; i < 500; i += 2) {
    ASSERT_TRUE(tree_->Delete(IntKey(i)).ok());
  }

  auto view = store_->OpenSnapshot(*snap);
  ASSERT_TRUE(view.ok());
  auto it = BTree::SeekFirst(view->get(), root_);
  ASSERT_TRUE(it.ok());
  size_t count = 0;
  for (; it->Valid(); it->Next()) ++count;
  ASSERT_TRUE(it->status().ok());
  EXPECT_EQ(count, 500u);  // as-of view sees everything
}

TEST_F(BTreeTest, DropFreesAllPages) {
  for (int64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(tree_->Insert(IntKey(i), 0).ok());
  }
  ASSERT_TRUE(tree_->Drop().ok());
  EXPECT_EQ(store_->page_store()->allocated_pages(), 0u);
}

TEST_F(BTreeTest, EmptyTreeIteration) {
  auto it = BTree::SeekFirst(store_.get(), root_);
  ASSERT_TRUE(it.ok());
  EXPECT_FALSE(it->Valid());
  EXPECT_FALSE(tree_->Lookup(IntKey(1)).ok());
}

}  // namespace
}  // namespace rql::sql

// Tests for the Pagelog archive: full-page records, Thresher-style diff
// records, chain reconstruction, chain caps, and corruption handling.

#include "retro/pagelog.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "retro/snapshot_store.h"

namespace rql::retro {
namespace {

using storage::kPageSize;
using storage::Page;

Page PatternPage(uint64_t seed) {
  Page p;
  Random rng(seed);
  for (uint32_t i = 0; i < kPageSize; i += 8) {
    p.WriteU64(i, rng.Next());
  }
  return p;
}

class PagelogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto log = Pagelog::Open(&env_, "p.pagelog");
    ASSERT_TRUE(log.ok());
    log_ = std::move(*log);
  }
  storage::InMemoryEnv env_;
  std::unique_ptr<Pagelog> log_;
};

TEST_F(PagelogTest, FullRecordRoundTrip) {
  Page page = PatternPage(1);
  auto offset = log_->AppendFull(page);
  ASSERT_TRUE(offset.ok());
  Page read;
  int64_t fetches = 0;
  ASSERT_TRUE(log_->Read(*offset, &read, &fetches).ok());
  EXPECT_EQ(std::memcmp(read.data, page.data, kPageSize), 0);
  EXPECT_EQ(fetches, 1);
  EXPECT_EQ(log_->full_record_count(), 1u);
}

TEST_F(PagelogTest, SmallDiffStoredCompactly) {
  Page base = PatternPage(2);
  auto base_offset = log_->AppendFull(base);
  ASSERT_TRUE(base_offset.ok());
  uint64_t size_after_full = log_->SizeBytes();

  Page changed = base;
  changed.WriteU64(100, 0xDEAD);
  changed.WriteU64(3000, 0xBEEF);
  auto diff_offset = log_->AppendDiff(changed, *base_offset, base);
  ASSERT_TRUE(diff_offset.ok());
  EXPECT_EQ(log_->diff_record_count(), 1u);
  // The diff record is far smaller than a page.
  EXPECT_LT(log_->SizeBytes() - size_after_full, 200u);

  Page read;
  int64_t fetches = 0;
  ASSERT_TRUE(log_->Read(*diff_offset, &read, &fetches).ok());
  EXPECT_EQ(std::memcmp(read.data, changed.data, kPageSize), 0);
  EXPECT_EQ(fetches, 2);  // diff + its base
  // The base is still intact.
  ASSERT_TRUE(log_->Read(*base_offset, &read).ok());
  EXPECT_EQ(std::memcmp(read.data, base.data, kPageSize), 0);
}

TEST_F(PagelogTest, LargeDiffFallsBackToFullPage) {
  Page base = PatternPage(3);
  auto base_offset = log_->AppendFull(base);
  ASSERT_TRUE(base_offset.ok());
  Page changed = PatternPage(4);  // completely different
  auto offset = log_->AppendDiff(changed, *base_offset, base);
  ASSERT_TRUE(offset.ok());
  EXPECT_EQ(log_->diff_record_count(), 0u);
  EXPECT_EQ(log_->full_record_count(), 2u);
  auto depth = log_->DepthAt(*offset);
  ASSERT_TRUE(depth.ok());
  EXPECT_EQ(*depth, 0);
}

TEST_F(PagelogTest, IdenticalPageFallsBackToFullPage) {
  // A zero-byte diff would make the record unreadable as a delta; the
  // implementation stores a full page instead.
  Page base = PatternPage(5);
  auto base_offset = log_->AppendFull(base);
  ASSERT_TRUE(base_offset.ok());
  auto offset = log_->AppendDiff(base, *base_offset, base);
  ASSERT_TRUE(offset.ok());
  Page read;
  ASSERT_TRUE(log_->Read(*offset, &read).ok());
  EXPECT_EQ(std::memcmp(read.data, base.data, kPageSize), 0);
}

TEST_F(PagelogTest, DiffChainReconstructsEveryVersion) {
  Random rng(77);
  Page current = PatternPage(6);
  std::vector<uint64_t> offsets;
  std::vector<Page> versions;
  auto first = log_->AppendFull(current);
  ASSERT_TRUE(first.ok());
  offsets.push_back(*first);
  versions.push_back(current);
  for (int v = 1; v < 20; ++v) {
    Page base = current;
    // Mutate a few words.
    for (int m = 0; m < 3; ++m) {
      current.WriteU64(static_cast<uint32_t>(rng.Uniform(kPageSize / 8)) * 8,
                       rng.Next());
    }
    auto offset = log_->AppendDiff(current, offsets.back(), base);
    ASSERT_TRUE(offset.ok());
    offsets.push_back(*offset);
    versions.push_back(current);
  }
  for (size_t v = 0; v < offsets.size(); ++v) {
    Page read;
    ASSERT_TRUE(log_->Read(offsets[v], &read).ok()) << "version " << v;
    EXPECT_EQ(std::memcmp(read.data, versions[v].data, kPageSize), 0)
        << "version " << v;
  }
}

TEST_F(PagelogTest, ChainDepthIsCapped) {
  log_->set_max_diff_chain(3);
  Page current = PatternPage(8);
  auto offset = log_->AppendFull(current);
  ASSERT_TRUE(offset.ok());
  uint64_t prev = *offset;
  for (int v = 0; v < 10; ++v) {
    Page base = current;
    current.WriteU64(8, static_cast<uint64_t>(v));
    auto next = log_->AppendDiff(current, prev, base);
    ASSERT_TRUE(next.ok());
    auto depth = log_->DepthAt(*next);
    ASSERT_TRUE(depth.ok());
    EXPECT_LE(*depth, 3);
    prev = *next;
  }
  // Some records must have been forced to full pages by the cap.
  EXPECT_GT(log_->full_record_count(), 1u);
  Page read;
  int64_t fetches = 0;
  ASSERT_TRUE(log_->Read(prev, &read, &fetches).ok());
  EXPECT_LE(fetches, 4);  // depth cap + 1
}

TEST_F(PagelogTest, SurvivesReopen) {
  Page base = PatternPage(9);
  auto base_offset = log_->AppendFull(base);
  Page changed = base;
  changed.WriteU64(0, 0x1234);
  auto diff_offset = log_->AppendDiff(changed, *base_offset, base);
  ASSERT_TRUE(diff_offset.ok());
  log_.reset();

  auto reopened = Pagelog::Open(&env_, "p.pagelog");
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->record_count(), 2u);
  EXPECT_EQ((*reopened)->diff_record_count(), 1u);
  Page read;
  ASSERT_TRUE((*reopened)->Read(*diff_offset, &read).ok());
  EXPECT_EQ(read.ReadU64(0), 0x1234u);
}

TEST_F(PagelogTest, BadOffsetRejected) {
  Page page;
  EXPECT_FALSE(log_->Read(9999, &page).ok());
  ASSERT_TRUE(log_->AppendFull(PatternPage(10)).ok());
  EXPECT_FALSE(log_->Read(5, &page).ok());  // mid-record garbage header
}

TEST(SnapshotStoreDiffModeTest, HistoryCorrectUnderDiffMode) {
  // The full snapshot-store stack in kDiff mode: every snapshot state is
  // still exact, while the archive shrinks relative to kFull mode.
  storage::InMemoryEnv env;
  auto run = [&env](PagelogMode mode, const std::string& name) {
    SnapshotStoreOptions options;
    options.pagelog_mode = mode;
    auto opened = SnapshotStore::Open(&env, name, options);
    EXPECT_TRUE(opened.ok());
    std::unique_ptr<SnapshotStore> store = std::move(*opened);
    auto id = store->AllocatePage();
    EXPECT_TRUE(id.ok());
    Page page = PatternPage(42);
    EXPECT_TRUE(store->WritePage(*id, page).ok());
    std::vector<Page> states;
    for (int s = 0; s < 30; ++s) {
      EXPECT_TRUE(store->DeclareSnapshot().ok());
      states.push_back(page);
      page.WriteU64(static_cast<uint32_t>((s * 16) % kPageSize & ~7u),
                    static_cast<uint64_t>(s));
      EXPECT_TRUE(store->WritePage(*id, page).ok());
    }
    for (int s = 0; s < 30; ++s) {
      auto view = store->OpenSnapshot(static_cast<SnapshotId>(s + 1));
      EXPECT_TRUE(view.ok());
      Page read;
      EXPECT_TRUE((*view)->ReadPage(*id, &read).ok());
      EXPECT_EQ(std::memcmp(read.data, states[static_cast<size_t>(s)].data,
                            kPageSize), 0)
          << "snapshot " << s + 1;
    }
    return store->pagelog()->SizeBytes();
  };
  uint64_t full_bytes = run(PagelogMode::kFull, "full");
  uint64_t diff_bytes = run(PagelogMode::kDiff, "diff");
  EXPECT_LT(diff_bytes, full_bytes / 4);
}

TEST(SnapshotStoreDiffModeTest, DiffModeSurvivesReopen) {
  storage::InMemoryEnv env;
  SnapshotStoreOptions options;
  options.pagelog_mode = PagelogMode::kDiff;
  storage::PageId id;
  {
    auto store = SnapshotStore::Open(&env, "d", options);
    ASSERT_TRUE(store.ok());
    auto alloc = (*store)->AllocatePage();
    ASSERT_TRUE(alloc.ok());
    id = *alloc;
    Page p = PatternPage(1);
    ASSERT_TRUE((*store)->WritePage(id, p).ok());
    ASSERT_TRUE((*store)->DeclareSnapshot().ok());
    p.WriteU64(0, 111);
    ASSERT_TRUE((*store)->WritePage(id, p).ok());
    ASSERT_TRUE((*store)->DeclareSnapshot().ok());
  }
  auto store = SnapshotStore::Open(&env, "d", options);
  ASSERT_TRUE(store.ok());
  // The next capture should diff against the recovered last offset (the
  // only pre-reopen capture, a full record).
  Page p = PatternPage(1);
  p.WriteU64(0, 222);
  ASSERT_TRUE((*store)->WritePage(id, p).ok());
  EXPECT_EQ((*store)->pagelog()->diff_record_count(), 1u);
  EXPECT_EQ((*store)->pagelog()->full_record_count(), 1u);
  auto view = (*store)->OpenSnapshot(1);
  ASSERT_TRUE(view.ok());
  Page read;
  ASSERT_TRUE((*view)->ReadPage(id, &read).ok());
  EXPECT_EQ(std::memcmp(read.data, PatternPage(1).data, kPageSize), 0);
}

TEST_F(PagelogTest, ReopenTruncatesPartialTailRecord) {
  Page a = PatternPage(10);
  Page b = PatternPage(11);
  auto oa = log_->AppendFull(a);
  auto ob = log_->AppendFull(b);
  ASSERT_TRUE(oa.ok() && ob.ok());
  uint64_t clean = log_->SizeBytes();
  log_.reset();

  // A crash mid-append leaves a partial trailing record; reopen must drop
  // it and keep every complete record readable.
  auto f = env_.OpenFile("p.pagelog");
  ASSERT_TRUE(f.ok());
  uint64_t off;
  ASSERT_TRUE((*f)->Append(7, "garbage", &off).ok());
  f->reset();

  auto reopened = Pagelog::Open(&env_, "p.pagelog");
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->SizeBytes(), clean);
  Page read;
  ASSERT_TRUE((*reopened)->Read(*oa, &read).ok());
  EXPECT_EQ(std::memcmp(read.data, a.data, kPageSize), 0);
  ASSERT_TRUE((*reopened)->Read(*ob, &read).ok());
  EXPECT_EQ(std::memcmp(read.data, b.data, kPageSize), 0);

  // The tail is clean again: new appends land on a valid record boundary.
  Page c = PatternPage(12);
  auto oc = (*reopened)->AppendFull(c);
  ASSERT_TRUE(oc.ok());
  ASSERT_TRUE((*reopened)->Read(*oc, &read).ok());
  EXPECT_EQ(std::memcmp(read.data, c.data, kPageSize), 0);
}

}  // namespace
}  // namespace rql::retro

#include "storage/env.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

#include "storage/fault_env.h"

namespace rql::storage {
namespace {

enum class EnvKind { kInMemory, kPosix, kFileDir, kFaultNoFaults };

const char* KindName(EnvKind kind) {
  switch (kind) {
    case EnvKind::kInMemory:
      return "InMemory";
    case EnvKind::kPosix:
      return "Posix";
    case EnvKind::kFileDir:
      return "FileDir";
    case EnvKind::kFaultNoFaults:
      return "FaultNoFaults";
  }
  return "?";
}

// Every Env implementation must satisfy the same file contract; a
// FaultInjectionEnv with nothing armed must be indistinguishable from its
// base env.
class EnvTest : public ::testing::TestWithParam<EnvKind> {
 protected:
  EnvTest() {
    switch (GetParam()) {
      case EnvKind::kInMemory:
        owned_ = std::make_unique<InMemoryEnv>();
        break;
      case EnvKind::kPosix:
        owned_ = std::make_unique<PosixEnv>();
        break;
      case EnvKind::kFileDir:
        owned_ = std::make_unique<FileEnv>("/tmp/rql_env_test_dir");
        break;
      case EnvKind::kFaultNoFaults:
        base_ = std::make_unique<InMemoryEnv>();
        owned_ = std::make_unique<FaultInjectionEnv>(base_.get());
        break;
    }
  }

  Env* env() { return owned_.get(); }

  std::string Name(const std::string& base) {
    return GetParam() == EnvKind::kPosix ? "/tmp/rql_env_test_" + base : base;
  }

  std::unique_ptr<Env> base_;
  std::unique_ptr<Env> owned_;
};

TEST_P(EnvTest, AppendReadRoundTrip) {
  auto file = env()->OpenFile(Name("a"));
  ASSERT_TRUE(file.ok());
  (*file)->Truncate(0).ok();
  uint64_t off = 0;
  ASSERT_TRUE((*file)->Append(5, "hello", &off).ok());
  EXPECT_EQ(off, 0u);
  ASSERT_TRUE((*file)->Append(5, "world", &off).ok());
  EXPECT_EQ(off, 5u);
  char buf[10];
  ASSERT_TRUE((*file)->Read(0, 10, buf).ok());
  EXPECT_EQ(std::string(buf, 10), "helloworld");
  EXPECT_EQ((*file)->Size(), 10u);
}

TEST_P(EnvTest, WriteExtendsFile) {
  auto file = env()->OpenFile(Name("b"));
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Truncate(0).ok());
  ASSERT_TRUE((*file)->Write(100, 3, "xyz").ok());
  EXPECT_EQ((*file)->Size(), 103u);
  char buf[3];
  ASSERT_TRUE((*file)->Read(100, 3, buf).ok());
  EXPECT_EQ(std::memcmp(buf, "xyz", 3), 0);
}

TEST_P(EnvTest, ReadPastEndFails) {
  auto file = env()->OpenFile(Name("c"));
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Truncate(0).ok());
  char buf[4];
  EXPECT_FALSE((*file)->Read(0, 4, buf).ok());
}

TEST_P(EnvTest, TruncateShrinks) {
  auto file = env()->OpenFile(Name("d"));
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Truncate(0).ok());
  uint64_t off;
  ASSERT_TRUE((*file)->Append(8, "12345678", &off).ok());
  ASSERT_TRUE((*file)->Truncate(4).ok());
  EXPECT_EQ((*file)->Size(), 4u);
  char buf[4];
  ASSERT_TRUE((*file)->Read(0, 4, buf).ok());
  EXPECT_EQ(std::memcmp(buf, "1234", 4), 0);
}

TEST_P(EnvTest, SyncSucceeds) {
  auto file = env()->OpenFile(Name("s"));
  ASSERT_TRUE(file.ok());
  uint64_t off;
  ASSERT_TRUE((*file)->Append(3, "abc", &off).ok());
  EXPECT_TRUE((*file)->Sync().ok());
}

TEST_P(EnvTest, ExistsAndDelete) {
  ASSERT_TRUE(env()->OpenFile(Name("e")).ok());
  EXPECT_TRUE(env()->FileExists(Name("e")));
  EXPECT_TRUE(env()->DeleteFile(Name("e")).ok());
  EXPECT_FALSE(env()->FileExists(Name("e")));
  EXPECT_FALSE(env()->DeleteFile(Name("e")).ok());
}

TEST_P(EnvTest, RenameMovesContent) {
  auto file = env()->OpenFile(Name("r1"));
  ASSERT_TRUE(file.ok());
  uint64_t off;
  ASSERT_TRUE((*file)->Append(3, "abc", &off).ok());
  file->reset();
  ASSERT_TRUE(env()->RenameFile(Name("r1"), Name("r2")).ok());
  EXPECT_FALSE(env()->FileExists(Name("r1")));
  auto moved = env()->OpenFile(Name("r2"));
  ASSERT_TRUE(moved.ok());
  ASSERT_EQ((*moved)->Size(), 3u);
  char buf[3];
  ASSERT_TRUE((*moved)->Read(0, 3, buf).ok());
  EXPECT_EQ(std::string(buf, 3), "abc");
  EXPECT_TRUE(env()->DeleteFile(Name("r2")).ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllEnvs, EnvTest,
    ::testing::Values(EnvKind::kInMemory, EnvKind::kPosix, EnvKind::kFileDir,
                      EnvKind::kFaultNoFaults),
    [](const ::testing::TestParamInfo<EnvKind>& info) {
      return KindName(info.param);
    });

TEST(InMemoryEnvTest, PersistsAcrossReopen) {
  InMemoryEnv env;
  {
    auto file = env.OpenFile("f");
    ASSERT_TRUE(file.ok());
    uint64_t off;
    ASSERT_TRUE((*file)->Append(3, "abc", &off).ok());
  }
  auto again = env.OpenFile("f");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->Size(), 3u);
}

TEST(InMemoryEnvTest, TotalBytes) {
  InMemoryEnv env;
  auto a = env.OpenFile("a");
  auto b = env.OpenFile("b");
  uint64_t off;
  ASSERT_TRUE((*a)->Append(10, "0123456789", &off).ok());
  ASSERT_TRUE((*b)->Append(5, "01234", &off).ok());
  EXPECT_EQ(env.TotalBytes(), 15u);
}

}  // namespace
}  // namespace rql::storage

#include "storage/page_store.h"

#include <gtest/gtest.h>

namespace rql::storage {
namespace {

class PageStoreTest : public ::testing::Test {
 protected:
  InMemoryEnv env_;
};

TEST_F(PageStoreTest, FreshStoreHasOnlyHeader) {
  auto store = PageStore::Open(&env_, "t.db");
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->page_count(), 1u);
  EXPECT_EQ((*store)->allocated_pages(), 0u);
}

TEST_F(PageStoreTest, AllocateWriteReadRoundTrip) {
  auto store = PageStore::Open(&env_, "t.db");
  ASSERT_TRUE(store.ok());
  auto id = (*store)->AllocatePage();
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 1u);

  Page page;
  page.Zero();
  page.WriteU64(0, 0xDEADBEEFCAFEull);
  ASSERT_TRUE((*store)->WritePage(*id, page).ok());

  Page read;
  ASSERT_TRUE((*store)->ReadPage(*id, &read).ok());
  EXPECT_EQ(read.ReadU64(0), 0xDEADBEEFCAFEull);
}

TEST_F(PageStoreTest, FreedPagesAreReused) {
  auto store = PageStore::Open(&env_, "t.db");
  ASSERT_TRUE(store.ok());
  auto a = (*store)->AllocatePage();
  auto b = (*store)->AllocatePage();
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE((*store)->FreePage(*a).ok());
  EXPECT_EQ((*store)->allocated_pages(), 1u);
  auto c = (*store)->AllocatePage();
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, *a);  // LIFO reuse
  EXPECT_EQ((*store)->page_count(), 3u);
}

TEST_F(PageStoreTest, ReusedPageIsZeroed) {
  auto store = PageStore::Open(&env_, "t.db");
  ASSERT_TRUE(store.ok());
  auto a = (*store)->AllocatePage();
  Page page;
  page.Zero();
  page.WriteU32(100, 777);
  ASSERT_TRUE((*store)->WritePage(*a, page).ok());
  ASSERT_TRUE((*store)->FreePage(*a).ok());
  auto b = (*store)->AllocatePage();
  ASSERT_TRUE(b.ok());
  Page read;
  ASSERT_TRUE((*store)->ReadPage(*b, &read).ok());
  EXPECT_EQ(read.ReadU32(100), 0u);
  EXPECT_EQ(read.ReadU32(0), 0u);
}

TEST_F(PageStoreTest, RejectsBadPageIds) {
  auto store = PageStore::Open(&env_, "t.db");
  ASSERT_TRUE(store.ok());
  Page page;
  EXPECT_FALSE((*store)->ReadPage(0, &page).ok());      // header
  EXPECT_FALSE((*store)->ReadPage(99, &page).ok());     // out of range
  EXPECT_FALSE((*store)->WritePage(99, page).ok());
  EXPECT_FALSE((*store)->FreePage(0).ok());
}

TEST_F(PageStoreTest, RootsPersistAcrossReopen) {
  {
    auto store = PageStore::Open(&env_, "t.db");
    ASSERT_TRUE(store.ok());
    auto id = (*store)->AllocatePage();
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE((*store)->SetRoot(0, *id).ok());
    ASSERT_TRUE((*store)->SetRoot(3, 42).ok());
  }
  auto store = PageStore::Open(&env_, "t.db");
  ASSERT_TRUE(store.ok());
  auto r0 = (*store)->GetRoot(0);
  auto r3 = (*store)->GetRoot(3);
  ASSERT_TRUE(r0.ok() && r3.ok());
  EXPECT_EQ(*r0, 1u);
  EXPECT_EQ(*r3, 42u);
  EXPECT_FALSE((*store)->GetRoot(PageStore::kNumRoots).ok());
}

TEST_F(PageStoreTest, DataPersistsAcrossReopen) {
  {
    auto store = PageStore::Open(&env_, "t.db");
    auto id = (*store)->AllocatePage();
    Page page;
    page.Zero();
    page.WriteU32(8, 123456);
    ASSERT_TRUE((*store)->WritePage(*id, page).ok());
  }
  auto store = PageStore::Open(&env_, "t.db");
  ASSERT_TRUE(store.ok());
  Page read;
  ASSERT_TRUE((*store)->ReadPage(1, &read).ok());
  EXPECT_EQ(read.ReadU32(8), 123456u);
}

TEST_F(PageStoreTest, ManyAllocations) {
  auto store = PageStore::Open(&env_, "t.db");
  ASSERT_TRUE(store.ok());
  for (uint32_t i = 1; i <= 500; ++i) {
    auto id = (*store)->AllocatePage();
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, i);
  }
  EXPECT_EQ((*store)->page_count(), 501u);
  EXPECT_EQ((*store)->allocated_pages(), 500u);
}

}  // namespace
}  // namespace rql::storage

// Tests for parallel RQL execution (the paper's Section 7 future work):
// parallel runs must produce byte-identical results to serial runs, for
// every supporting mechanism and any worker count.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "rql/rql.h"

namespace rql {
namespace {

using sql::Row;
using sql::Value;

struct Env {
  storage::InMemoryEnv storage;
  std::unique_ptr<sql::Database> data;
  std::unique_ptr<sql::Database> meta;
  std::unique_ptr<RqlEngine> engine;
};

Env MakeEnv(int snapshots) {
  Env e;
  auto data = sql::Database::Open(&e.storage, "data");
  auto meta = sql::Database::Open(&e.storage, "meta");
  EXPECT_TRUE(data.ok() && meta.ok());
  e.data = std::move(*data);
  e.meta = std::move(*meta);
  e.engine = std::make_unique<RqlEngine>(e.data.get(), e.meta.get());
  EXPECT_TRUE(e.engine->EnsureSnapIds().ok());
  EXPECT_TRUE(
      e.data->Exec("CREATE TABLE t (k INTEGER, v INTEGER)").ok());
  Random rng(99);
  for (int s = 0; s < snapshots; ++s) {
    EXPECT_TRUE(e.data->Exec("BEGIN").ok());
    for (int i = 0; i < 5; ++i) {
      EXPECT_TRUE(e.data
                      ->Exec("INSERT INTO t VALUES (" +
                             std::to_string(rng.Uniform(20)) + ", " +
                             std::to_string(s * 100 + i) + ")")
                      .ok());
    }
    EXPECT_TRUE(e.data->Exec("DELETE FROM t WHERE v % 7 = 3").ok());
    EXPECT_TRUE(
        e.engine->CommitWithSnapshot("s" + std::to_string(s)).ok());
  }
  return e;
}

std::multiset<std::string> TableContents(sql::Database* db,
                                         const std::string& table) {
  auto rows = db->Query("SELECT * FROM " + table);
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  std::multiset<std::string> out;
  for (const Row& row : rows->rows) out.insert(sql::EncodeRow(row));
  return out;
}

class RqlParallelTest : public ::testing::TestWithParam<int> {};

TEST_P(RqlParallelTest, CollateDataMatchesSerial) {
  Env e = MakeEnv(12);
  const char* qq =
      "SELECT k, COUNT(*) AS c, current_snapshot() AS sid FROM t GROUP BY k";
  ASSERT_TRUE(
      e.engine->CollateData("SELECT snap_id FROM SnapIds", qq, "Serial")
          .ok());
  auto serial = TableContents(e.meta.get(), "Serial");
  ASSERT_FALSE(serial.empty());

  e.engine->mutable_options()->parallel_workers = GetParam();
  Status s = e.engine->CollateData("SELECT snap_id FROM SnapIds", qq,
                                   "Parallel");
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(e.engine->last_run_stats().parallel);
  EXPECT_EQ(e.engine->last_run_stats().iterations.size(), 12u);
  auto parallel = TableContents(e.meta.get(), "Parallel");
  EXPECT_EQ(serial, parallel);
}

TEST_P(RqlParallelTest, AggregateVariableMatchesSerial) {
  Env e = MakeEnv(10);
  const char* qq = "SELECT SUM(v) AS total FROM t";
  ASSERT_TRUE(e.engine
                  ->AggregateDataInVariable("SELECT snap_id FROM SnapIds",
                                            qq, "Serial", "max")
                  .ok());
  auto serial = e.meta->QueryScalar("SELECT * FROM Serial");
  ASSERT_TRUE(serial.ok());

  e.engine->mutable_options()->parallel_workers = GetParam();
  ASSERT_TRUE(e.engine
                  ->AggregateDataInVariable("SELECT snap_id FROM SnapIds",
                                            qq, "Parallel", "max")
                  .ok());
  auto parallel = e.meta->QueryScalar("SELECT * FROM Parallel");
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(sql::CompareValues(*serial, *parallel), 0);
}

TEST_P(RqlParallelTest, OrderDependentMechanismsStaySequential) {
  Env e = MakeEnv(8);
  e.engine->mutable_options()->parallel_workers = GetParam();
  // Intervals depend on iteration order; the engine must fall back to the
  // sequential path and still be correct.
  ASSERT_TRUE(e.engine
                  ->CollateDataIntoIntervals(
                      "SELECT snap_id FROM SnapIds",
                      "SELECT DISTINCT k FROM t", "Lifetimes")
                  .ok());
  EXPECT_FALSE(e.engine->last_run_stats().parallel);
  // Intervals must tile: for every row of every snapshot there is exactly
  // one covering interval.
  for (int snap = 1; snap <= 8; ++snap) {
    auto distinct = e.data->QueryScalar(
        "SELECT AS OF " + std::to_string(snap) +
        " COUNT(DISTINCT k) FROM t");
    ASSERT_TRUE(distinct.ok());
    auto covering = e.meta->QueryScalar(
        "SELECT COUNT(*) FROM Lifetimes WHERE start_snapshot <= " +
        std::to_string(snap) + " AND end_snapshot >= " +
        std::to_string(snap));
    ASSERT_TRUE(covering.ok());
    EXPECT_EQ(covering->integer(), distinct->integer()) << "snap " << snap;
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, RqlParallelTest,
                         ::testing::Values(2, 3, 8));

TEST(RqlParallelStatsTest, TotalUsDerivesFromWallTimeNotPerIterationSums) {
  Env e = MakeEnv(10);
  e.engine->mutable_options()->parallel_workers = 4;
  ASSERT_TRUE(e.engine
                  ->CollateData("SELECT snap_id FROM SnapIds",
                                "SELECT k, v FROM t", "R")
                  .ok());
  const RqlRunStats& stats = e.engine->last_run_stats();
  ASSERT_TRUE(stats.parallel);
  // Regression: TotalUs once summed per-iteration query_eval_us (each of
  // which embeds the same concurrent wall interval) on top of
  // parallel_wall_us, double counting overlapped work. The total must be
  // the wall-clock decomposition: setup + parallel phase + serial replay.
  int64_t expected = stats.extra_agg_us + stats.parallel_wall_us;
  for (const RqlIterationStats& it : stats.iterations) {
    expected += it.udf_us;
  }
  EXPECT_EQ(stats.TotalUs(), expected);
  // And in particular never exceeds the sum of phases by an extra copy of
  // the per-iteration evaluation time.
  int64_t eval_sum = 0;
  for (const RqlIterationStats& it : stats.iterations) {
    eval_sum += it.query_eval_us;
  }
  EXPECT_LE(stats.TotalUs(), expected + eval_sum);
}

TEST(RqlParallelStatsTest, ColdCachePerIterationRejectedInParallel) {
  Env e = MakeEnv(6);
  e.engine->mutable_options()->parallel_workers = 4;
  e.engine->mutable_options()->cold_cache_per_iteration = true;
  Status s = e.engine->CollateData("SELECT snap_id FROM SnapIds",
                                   "SELECT k, v FROM t", "R");
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();

  // The combination is fine when the run stays sequential (one worker).
  e.engine->mutable_options()->parallel_workers = 1;
  EXPECT_TRUE(e.engine
                  ->CollateData("SELECT snap_id FROM SnapIds",
                                "SELECT k, v FROM t", "R2")
                  .ok());
}

TEST(RqlParallelStatsTest, ConcurrencyCountersZeroInSequentialRuns) {
  Env e = MakeEnv(8);
  ASSERT_TRUE(e.engine
                  ->CollateData("SELECT snap_id FROM SnapIds",
                                "SELECT k, v FROM t", "Seq")
                  .ok());
  const RqlRunStats& serial = e.engine->last_run_stats();
  ASSERT_FALSE(serial.parallel);
  // A sequential run has nothing to race with: coalesced fetches and
  // blocked time must be zero by construction, not merely small.
  EXPECT_EQ(serial.coalesced_loads, 0);
  EXPECT_EQ(serial.parallel_lock_wait_us, 0);
  for (const RqlIterationStats& it : serial.iterations) {
    EXPECT_EQ(it.coalesced_loads, 0);
  }

  // A parallel run reports the counters (possibly zero at this tiny
  // scale, but wired and non-negative) alongside identical results.
  e.engine->mutable_options()->parallel_workers = 4;
  ASSERT_TRUE(e.engine
                  ->CollateData("SELECT snap_id FROM SnapIds",
                                "SELECT k, v FROM t", "Par")
                  .ok());
  const RqlRunStats& parallel = e.engine->last_run_stats();
  ASSERT_TRUE(parallel.parallel);
  EXPECT_GE(parallel.coalesced_loads, 0);
  EXPECT_GE(parallel.parallel_lock_wait_us, 0);
  EXPECT_EQ(TableContents(e.meta.get(), "Seq"),
            TableContents(e.meta.get(), "Par"));
}

TEST(ReplaceCurrentSnapshotTest, TextualRewrite) {
  EXPECT_EQ(RqlEngine::ReplaceCurrentSnapshot(
                "SELECT current_snapshot() FROM t", 7),
            "SELECT 7 FROM t");
  EXPECT_EQ(RqlEngine::ReplaceCurrentSnapshot(
                "SELECT CURRENT_SNAPSHOT FROM t", 7),
            "SELECT CURRENT_SNAPSHOT FROM t");  // no parens: untouched
  EXPECT_EQ(RqlEngine::ReplaceCurrentSnapshot(
                "SELECT current_snapshot ( ) AS sid, "
                "'current_snapshot()' FROM t",
                12),
            "SELECT 12 AS sid, 'current_snapshot()' FROM t");
  EXPECT_EQ(RqlEngine::ReplaceCurrentSnapshot(
                "SELECT my_current_snapshot() FROM t", 3),
            "SELECT my_current_snapshot() FROM t");  // word boundary
}

TEST(ReplaceCurrentSnapshotTest, CommentsAreNotRewritten) {
  EXPECT_EQ(RqlEngine::ReplaceCurrentSnapshot(
                "SELECT current_snapshot() -- not current_snapshot()\n"
                "FROM t",
                7),
            "SELECT 7 -- not current_snapshot()\nFROM t");
  EXPECT_EQ(RqlEngine::ReplaceCurrentSnapshot(
                "SELECT /* current_snapshot() */ current_snapshot() FROM t",
                7),
            "SELECT /* current_snapshot() */ 7 FROM t");
  // A quote inside a comment must not open a string.
  EXPECT_EQ(RqlEngine::ReplaceCurrentSnapshot(
                "SELECT /* it's */ current_snapshot() FROM t", 4),
            "SELECT /* it's */ 4 FROM t");
  // An unterminated block comment swallows the rest of the text.
  EXPECT_EQ(RqlEngine::ReplaceCurrentSnapshot(
                "SELECT 1 /* current_snapshot()", 4),
            "SELECT 1 /* current_snapshot()");
}

TEST(ReplaceCurrentSnapshotTest, QuotedIdentifiersAreNotRewritten) {
  // "current_snapshot()" in double quotes is an identifier, not a call.
  EXPECT_EQ(RqlEngine::ReplaceCurrentSnapshot(
                "SELECT \"current_snapshot()\" FROM t", 7),
            "SELECT \"current_snapshot()\" FROM t");
  // An apostrophe inside a quoted identifier must not open a string
  // literal — the genuine call after it is still rewritten.
  EXPECT_EQ(RqlEngine::ReplaceCurrentSnapshot(
                "SELECT \"it's\", current_snapshot() FROM t", 9),
            "SELECT \"it's\", 9 FROM t");
  // Doubled-quote escape inside the identifier keeps the run open.
  EXPECT_EQ(RqlEngine::ReplaceCurrentSnapshot(
                "SELECT \"a\"\"current_snapshot()\", current_snapshot() "
                "FROM t",
                2),
            "SELECT \"a\"\"current_snapshot()\", 2 FROM t");
  // Symmetrically, a double quote inside a string literal is plain text.
  EXPECT_EQ(RqlEngine::ReplaceCurrentSnapshot(
                "SELECT '\"', current_snapshot() FROM t", 5),
            "SELECT '\"', 5 FROM t");
}

TEST(InjectAsOfTest, QuotedIdentifiersAreSkipped) {
  EXPECT_EQ(RqlEngine::InjectAsOf("SELECT \"select\" FROM t", 5),
            "SELECT AS OF 5 \"select\" FROM t");
  // An apostrophe inside a quoted identifier must not open a string that
  // would hide the real SELECT keyword.
  EXPECT_EQ(
      RqlEngine::InjectAsOf("WITH \"it's\" AS (SELECT 1) SELECT k FROM t", 5),
      "WITH \"it's\" AS (SELECT AS OF 5 1) SELECT k FROM t");
}

TEST(RqlTraceParallelTest, TraceWellFormedAndBoundedUnderWorkers) {
  Env e = MakeEnv(12);
  RqlOptions* opts = e.engine->mutable_options();
  opts->parallel_workers = 4;
  opts->trace = true;
  opts->trace_capacity = 8;  // far below the ~26 events a run emits
  ASSERT_TRUE(e.engine
                  ->CollateData("SELECT snap_id FROM SnapIds",
                                "SELECT k, v FROM t", "Par")
                  .ok());
  const RqlTrace& bounded = e.engine->last_run_trace();
  EXPECT_EQ(bounded.capacity(), 8u);
  EXPECT_EQ(bounded.Events().size(), 8u);
  EXPECT_GT(bounded.dropped(), 0);
  EXPECT_EQ(bounded.emitted(), bounded.dropped() + 8);

  // With enough capacity the stream is complete and well-formed: a
  // run_begin/run_end envelope, one begin and one end per snapshot, and
  // worker attribution within the configured pool.
  opts->trace_capacity = 4096;
  ASSERT_TRUE(e.engine
                  ->CollateData("SELECT snap_id FROM SnapIds",
                                "SELECT k, v FROM t", "Par2")
                  .ok());
  std::vector<RqlTraceEvent> events = e.engine->last_run_trace().Events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(e.engine->last_run_trace().dropped(), 0);
  EXPECT_EQ(events.front().type, RqlTraceEventType::kRunBegin);
  EXPECT_EQ(events.front().args[1], 4);  // worker count
  EXPECT_EQ(events.back().type, RqlTraceEventType::kRunEnd);
  int begins = 0, ends = 0, stalls = 0;
  for (const RqlTraceEvent& ev : events) {
    EXPECT_LE(ev.worker, 4);
    EXPECT_GE(ev.t_us, 0);
    if (ev.type == RqlTraceEventType::kIterationBegin) ++begins;
    if (ev.type == RqlTraceEventType::kIterationEnd) ++ends;
    if (ev.type == RqlTraceEventType::kWorkerStall) ++stalls;
  }
  EXPECT_EQ(begins, 12);
  EXPECT_EQ(ends, 12);
  EXPECT_EQ(stalls, 1);
}

TEST(RqlTraceParallelTest, LiteralSurvivesParallelTextualRewrite) {
  // Parallel workers use the textual current_snapshot() rewrite; a quoted
  // literal in Qq must come through byte-identical to the serial run.
  Env e = MakeEnv(6);
  const char* qq =
      "SELECT k, 'current_snapshot()' AS tag, current_snapshot() AS sid "
      "FROM t";
  ASSERT_TRUE(e.engine
                  ->CollateData("SELECT snap_id FROM SnapIds", qq, "Serial")
                  .ok());
  e.engine->mutable_options()->parallel_workers = 4;
  ASSERT_TRUE(e.engine
                  ->CollateData("SELECT snap_id FROM SnapIds", qq, "Par")
                  .ok());
  EXPECT_EQ(TableContents(e.meta.get(), "Serial"),
            TableContents(e.meta.get(), "Par"));
  auto tag = e.meta->QueryScalar("SELECT DISTINCT tag FROM Par");
  ASSERT_TRUE(tag.ok());
  EXPECT_EQ(tag->text(), "current_snapshot()");
}

TEST(InjectAsOfTest, SkipsStringsAndComments) {
  EXPECT_EQ(RqlEngine::InjectAsOf("SELECT k FROM t", 5),
            "SELECT AS OF 5 k FROM t");
  // The first SELECT inside a leading comment must not be annotated.
  EXPECT_EQ(RqlEngine::InjectAsOf("-- SELECT not this\nSELECT k FROM t", 5),
            "-- SELECT not this\nSELECT AS OF 5 k FROM t");
  EXPECT_EQ(RqlEngine::InjectAsOf("/* SELECT not this */ SELECT k FROM t", 5),
            "/* SELECT not this */ SELECT AS OF 5 k FROM t");
  // Nor one inside a string literal.
  EXPECT_EQ(RqlEngine::InjectAsOf("SELECT 'SELECT' FROM t", 5),
            "SELECT AS OF 5 'SELECT' FROM t");
  // A quote inside a comment must not flip string state.
  EXPECT_EQ(RqlEngine::InjectAsOf("/* don't */ SELECT k FROM t", 5),
            "/* don't */ SELECT AS OF 5 k FROM t");
}

}  // namespace
}  // namespace rql

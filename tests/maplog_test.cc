#include "retro/maplog.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace rql::retro {
namespace {

class MaplogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto log = Maplog::Open(&env_, "m.maplog");
    ASSERT_TRUE(log.ok());
    log_ = std::move(*log);
  }
  storage::InMemoryEnv env_;
  std::unique_ptr<Maplog> log_;
};

TEST_F(MaplogTest, MarksMustBeSequential) {
  ASSERT_TRUE(log_->AppendSnapshotMark(1).ok());
  EXPECT_FALSE(log_->AppendSnapshotMark(3).ok());
  ASSERT_TRUE(log_->AppendSnapshotMark(2).ok());
}

TEST_F(MaplogTest, BuildSptPicksFirstCoveringEntryPerPage) {
  // Snapshot 1 declared; pages 10 and 11 captured for it; page 10 captured
  // again for snapshot 2 at a different location.
  ASSERT_TRUE(log_->AppendSnapshotMark(1).ok());
  ASSERT_TRUE(log_->AppendCapture(10, 1, 1, 4096).ok());
  ASSERT_TRUE(log_->AppendCapture(11, 1, 1, 8192).ok());
  ASSERT_TRUE(log_->AppendSnapshotMark(2).ok());
  ASSERT_TRUE(log_->AppendCapture(10, 2, 2, 12288).ok());

  SnapshotPageTable spt;
  uint64_t resume = 0;
  SptBuildStats stats;
  ASSERT_TRUE(log_->BuildSpt(1, &spt, &resume, &stats).ok());
  EXPECT_EQ(spt.size(), 2u);
  EXPECT_EQ(spt[10], 4096u);
  EXPECT_EQ(spt[11], 8192u);
  EXPECT_EQ(resume, log_->entry_count());
  EXPECT_GT(stats.entries_scanned, 0);

  ASSERT_TRUE(log_->BuildSpt(2, &spt, &resume, &stats).ok());
  EXPECT_EQ(spt.size(), 1u);
  EXPECT_EQ(spt[10], 12288u);
}

TEST_F(MaplogTest, RangeCaptureCoversAllSnapshotsInRange) {
  // Page untouched across snapshots 1-3, then modified: one capture covers
  // the whole range.
  ASSERT_TRUE(log_->AppendSnapshotMark(1).ok());
  ASSERT_TRUE(log_->AppendSnapshotMark(2).ok());
  ASSERT_TRUE(log_->AppendSnapshotMark(3).ok());
  ASSERT_TRUE(log_->AppendCapture(7, 1, 3, 0).ok());

  for (SnapshotId s = 1; s <= 3; ++s) {
    SnapshotPageTable spt;
    uint64_t resume = 0;
    ASSERT_TRUE(log_->BuildSpt(s, &spt, &resume, nullptr).ok());
    ASSERT_EQ(spt.size(), 1u) << "snapshot " << s;
    EXPECT_EQ(spt[7], 0u);
  }
}

TEST_F(MaplogTest, PagesAllocatedAfterSnapshotAreExcluded) {
  ASSERT_TRUE(log_->AppendSnapshotMark(1).ok());
  ASSERT_TRUE(log_->AppendSnapshotMark(2).ok());
  // Page 20 allocated after snapshot 2, then captured for snapshot 3 only.
  ASSERT_TRUE(log_->AppendAlloc(20, 2).ok());
  ASSERT_TRUE(log_->AppendSnapshotMark(3).ok());
  ASSERT_TRUE(log_->AppendCapture(20, 3, 3, 4096).ok());

  SnapshotPageTable spt;
  uint64_t resume = 0;
  ASSERT_TRUE(log_->BuildSpt(2, &spt, &resume, nullptr).ok());
  EXPECT_TRUE(spt.empty());
  ASSERT_TRUE(log_->BuildSpt(3, &spt, &resume, nullptr).ok());
  EXPECT_EQ(spt.size(), 1u);
}

TEST_F(MaplogTest, RefreshExtendsSpt) {
  ASSERT_TRUE(log_->AppendSnapshotMark(1).ok());
  SnapshotPageTable spt;
  uint64_t resume = 0;
  ASSERT_TRUE(log_->BuildSpt(1, &spt, &resume, nullptr).ok());
  EXPECT_TRUE(spt.empty());

  // A capture lands after the SPT was built (concurrent update).
  ASSERT_TRUE(log_->AppendCapture(5, 1, 1, 4096).ok());
  ASSERT_TRUE(log_->RefreshSpt(1, &spt, &resume, nullptr).ok());
  EXPECT_EQ(spt.size(), 1u);
  EXPECT_EQ(spt[5], 4096u);
  EXPECT_EQ(resume, log_->entry_count());
}

TEST_F(MaplogTest, UnknownSnapshotFails) {
  SnapshotPageTable spt;
  uint64_t resume = 0;
  EXPECT_FALSE(log_->BuildSpt(1, &spt, &resume, nullptr).ok());
  EXPECT_FALSE(log_->BuildSpt(0, &spt, &resume, nullptr).ok());
}

TEST_F(MaplogTest, RecoverModEpochsAndLatest) {
  ASSERT_TRUE(log_->AppendSnapshotMark(1).ok());
  ASSERT_TRUE(log_->AppendCapture(10, 1, 1, 0).ok());
  ASSERT_TRUE(log_->AppendAlloc(30, 1).ok());
  ASSERT_TRUE(log_->AppendSnapshotMark(2).ok());
  ASSERT_TRUE(log_->AppendCapture(10, 2, 2, 4096).ok());

  std::unordered_map<storage::PageId, SnapshotId> epochs;
  SnapshotId latest = 0;
  ASSERT_TRUE(log_->RecoverModEpochs(&epochs, &latest).ok());
  EXPECT_EQ(latest, 2u);
  EXPECT_EQ(epochs[10], 2u);
  EXPECT_EQ(epochs[30], 1u);
  EXPECT_EQ(epochs.count(99), 0u);
}

TEST_F(MaplogTest, SkippyAndLinearScansAgree) {
  // Randomized history: pages captured in arbitrary epochs; the Skippy
  // scan must produce exactly the same SPT as the linear scan for every
  // snapshot.
  uint64_t seed = 987654321;
  auto next = [&seed]() {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    return seed >> 33;
  };
  const SnapshotId kSnapshots = 37;
  std::unordered_map<storage::PageId, SnapshotId> mod_epoch;
  for (SnapshotId s = 1; s <= kSnapshots; ++s) {
    ASSERT_TRUE(log_->AppendSnapshotMark(s).ok());
    int captures = static_cast<int>(next() % 12);
    for (int c = 0; c < captures; ++c) {
      auto page = static_cast<storage::PageId>(1 + next() % 30);
      SnapshotId epoch = mod_epoch.count(page) ? mod_epoch[page] : 0;
      if (epoch >= s) continue;  // already captured this epoch
      ASSERT_TRUE(
          log_->AppendCapture(page, epoch + 1, s, (s * 100 + c) * 4096)
              .ok());
      mod_epoch[page] = s;
    }
  }
  for (SnapshotId s = 1; s <= kSnapshots; ++s) {
    SnapshotPageTable linear, skippy;
    uint64_t resume = 0;
    SptBuildStats lin_stats, sk_stats;
    log_->set_use_skippy(false);
    ASSERT_TRUE(log_->BuildSpt(s, &linear, &resume, &lin_stats).ok());
    log_->set_use_skippy(true);
    ASSERT_TRUE(log_->BuildSpt(s, &skippy, &resume, &sk_stats).ok());
    ASSERT_EQ(linear.size(), skippy.size()) << "snapshot " << s;
    for (const auto& [page, offset] : linear) {
      auto it = skippy.find(page);
      ASSERT_NE(it, skippy.end()) << "snapshot " << s << " page " << page;
      EXPECT_EQ(it->second, offset) << "snapshot " << s << " page " << page;
    }
    // Skippy never scans more entries than the linear suffix.
    EXPECT_LE(sk_stats.entries_scanned, lin_stats.entries_scanned);
  }
}

TEST_F(MaplogTest, SkippyScansFewerEntriesOnRepeatedOverwrites) {
  // One page overwritten every epoch: the linear scan for snapshot 1 reads
  // every capture; Skippy reads each page once per level (~log n).
  const SnapshotId kSnapshots = 256;
  for (SnapshotId s = 1; s <= kSnapshots; ++s) {
    ASSERT_TRUE(log_->AppendSnapshotMark(s).ok());
    ASSERT_TRUE(log_->AppendCapture(7, s, s, s * 4096).ok());
  }
  SnapshotPageTable spt;
  uint64_t resume = 0;
  SptBuildStats lin_stats, sk_stats;
  log_->set_use_skippy(false);
  ASSERT_TRUE(log_->BuildSpt(1, &spt, &resume, &lin_stats).ok());
  EXPECT_EQ(spt[7], 4096u);
  log_->set_use_skippy(true);
  ASSERT_TRUE(log_->BuildSpt(1, &spt, &resume, &sk_stats).ok());
  EXPECT_EQ(spt[7], 4096u);
  EXPECT_GE(lin_stats.entries_scanned, 256);
  EXPECT_LE(sk_stats.entries_scanned, 2 * 9);  // ~log2(256) runs of size 1
}

TEST_F(MaplogTest, SptCursorExpiryAndWake) {
  // Page 5 captured for snapshots [1,2] only; page 9 first captured for
  // snapshot 3 (allocated after 2). Ascending seeks must drop 5 after its
  // range expires and pick up 9 exactly when its range starts.
  ASSERT_TRUE(log_->AppendSnapshotMark(1).ok());
  ASSERT_TRUE(log_->AppendSnapshotMark(2).ok());
  ASSERT_TRUE(log_->AppendCapture(5, 1, 2, 4096).ok());
  ASSERT_TRUE(log_->AppendAlloc(9, 2).ok());
  ASSERT_TRUE(log_->AppendSnapshotMark(3).ok());
  ASSERT_TRUE(log_->AppendCapture(9, 3, 3, 8192).ok());

  SptCursor cursor;
  int64_t delta = 0;
  ASSERT_TRUE(cursor.Seek(*log_, 1, nullptr, &delta).ok());
  EXPECT_EQ(cursor.table().size(), 1u);
  EXPECT_EQ(cursor.table().at(5), 4096u);

  ASSERT_TRUE(cursor.Seek(*log_, 2, nullptr, &delta).ok());
  EXPECT_EQ(cursor.table().size(), 1u);
  EXPECT_EQ(cursor.table().at(5), 4096u);

  ASSERT_TRUE(cursor.Seek(*log_, 3, nullptr, &delta).ok());
  EXPECT_EQ(cursor.table().size(), 1u);
  EXPECT_EQ(cursor.table().at(9), 8192u);
}

TEST_F(MaplogTest, SptCursorMatchesColdBuildOnRandomHistories) {
  // The equivalence property behind incremental_spt: after any mix of
  // appends and (mostly ascending) seeks, the cursor's table must equal a
  // cold BuildSpt of the same snapshot.
  uint64_t seed = 20260805;
  auto next = [&seed]() {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    return seed >> 33;
  };
  const SnapshotId kSnapshots = 41;
  std::unordered_map<storage::PageId, SnapshotId> mod_epoch;
  SptCursor cursor;
  SnapshotId last_seek = 0;
  for (SnapshotId s = 1; s <= kSnapshots; ++s) {
    ASSERT_TRUE(log_->AppendSnapshotMark(s).ok());
    int writes = static_cast<int>(next() % 7);
    for (int w = 0; w < writes; ++w) {
      auto page = static_cast<storage::PageId>(1 + next() % 20);
      if (next() % 6 == 0 && mod_epoch.count(page) == 0) {
        ASSERT_TRUE(log_->AppendAlloc(page, s).ok());
        mod_epoch[page] = s;
        continue;
      }
      SnapshotId epoch = mod_epoch.count(page) ? mod_epoch[page] : 0;
      if (epoch >= s) continue;
      ASSERT_TRUE(
          log_->AppendCapture(page, epoch + 1, s, (s * 100 + w) * 4096)
              .ok());
      mod_epoch[page] = s;
    }
    // Seek while the log keeps growing: exercises the ingest path. Every
    // few snapshots jump backwards to exercise the rebase fallback.
    SnapshotId target = s;
    if (s % 7 == 0 && last_seek > 1) target = 1 + next() % last_seek;
    int64_t delta = 0;
    SptBuildStats stats;
    ASSERT_TRUE(cursor.Seek(*log_, target, &stats, &delta).ok());
    EXPECT_EQ(cursor.position(), target);
    last_seek = target;

    SnapshotPageTable cold;
    uint64_t resume = 0;
    ASSERT_TRUE(log_->BuildSpt(target, &cold, &resume, nullptr).ok());
    ASSERT_EQ(cursor.table().size(), cold.size())
        << "snapshot " << target << " at history length " << s;
    for (const auto& [page, offset] : cold) {
      auto it = cursor.table().find(page);
      ASSERT_NE(it, cursor.table().end())
          << "snapshot " << target << " page " << page;
      EXPECT_EQ(it->second, offset)
          << "snapshot " << target << " page " << page;
    }
  }
}

TEST_F(MaplogTest, SptCursorAdvanceScansOnlyTheDelta) {
  // One page overwritten per epoch: visiting all snapshots in order via
  // the cursor scans the suffix once (rebase) plus one entry per advance,
  // while cold builds re-scan the suffix for every snapshot.
  const SnapshotId kSnapshots = 128;
  for (SnapshotId s = 1; s <= kSnapshots; ++s) {
    ASSERT_TRUE(log_->AppendSnapshotMark(s).ok());
    ASSERT_TRUE(log_->AppendCapture(7, s, s, s * 4096).ok());
  }
  log_->set_use_skippy(false);  // compare against plain linear builds
  int64_t cursor_entries = 0, cold_entries = 0;
  SptCursor cursor;
  for (SnapshotId s = 1; s <= kSnapshots; ++s) {
    SptBuildStats cur_stats, cold_stats;
    int64_t delta = 0;
    ASSERT_TRUE(cursor.Seek(*log_, s, &cur_stats, &delta).ok());
    cursor_entries += cur_stats.entries_scanned;
    SnapshotPageTable cold;
    uint64_t resume = 0;
    ASSERT_TRUE(log_->BuildSpt(s, &cold, &resume, &cold_stats).ok());
    cold_entries += cold_stats.entries_scanned;
    EXPECT_EQ(cursor.table().at(7), cold.at(7)) << "snapshot " << s;
  }
  // Cold: sum over s of (suffix from mark s) ~ n^2/2. Cursor: one full
  // suffix (rebase at s=1) + ~2 entries per advance.
  EXPECT_GE(cold_entries, cursor_entries * 10);
}

TEST_F(MaplogTest, SptCursorRejectsUnknownSnapshots) {
  ASSERT_TRUE(log_->AppendSnapshotMark(1).ok());
  SptCursor cursor;
  int64_t delta = 0;
  EXPECT_FALSE(cursor.Seek(*log_, 0, nullptr, &delta).ok());
  EXPECT_FALSE(cursor.Seek(*log_, 2, nullptr, &delta).ok());
  ASSERT_TRUE(cursor.Seek(*log_, 1, nullptr, &delta).ok());
}

TEST_F(MaplogTest, SptCursorDeltaInvalidAfterRebase) {
  // A rebase (first seek of a cursor, or any backward seek) has no
  // predecessor snapshot to diff against: last_delta must read invalid.
  ASSERT_TRUE(log_->AppendSnapshotMark(1).ok());
  ASSERT_TRUE(log_->AppendCapture(4, 1, 1, 4096).ok());
  ASSERT_TRUE(log_->AppendSnapshotMark(2).ok());
  ASSERT_TRUE(log_->AppendCapture(4, 2, 2, 8192).ok());

  SptCursor cursor;
  int64_t delta = 0;
  ASSERT_TRUE(cursor.Seek(*log_, 1, nullptr, &delta).ok());
  EXPECT_FALSE(cursor.last_delta_valid());

  ASSERT_TRUE(cursor.Seek(*log_, 2, nullptr, &delta).ok());
  EXPECT_TRUE(cursor.last_delta_valid());

  // Backward seek rebases again: the delta is invalidated, not stale.
  ASSERT_TRUE(cursor.Seek(*log_, 1, nullptr, &delta).ok());
  EXPECT_FALSE(cursor.last_delta_valid());
}

TEST_F(MaplogTest, SptCursorDeltaEmptyBetweenIdenticalSnapshots) {
  // Snapshots 2 and 3 declare no page changes; advancing across them must
  // produce a valid, empty delta — the signal iteration skipping rests on.
  ASSERT_TRUE(log_->AppendSnapshotMark(1).ok());
  ASSERT_TRUE(log_->AppendSnapshotMark(2).ok());
  ASSERT_TRUE(log_->AppendSnapshotMark(3).ok());
  ASSERT_TRUE(log_->AppendCapture(6, 1, 3, 4096).ok());
  ASSERT_TRUE(log_->AppendSnapshotMark(4).ok());
  ASSERT_TRUE(log_->AppendCapture(6, 4, 4, 8192).ok());

  SptCursor cursor;
  int64_t delta = 0;
  ASSERT_TRUE(cursor.Seek(*log_, 1, nullptr, &delta).ok());
  for (SnapshotId s = 2; s <= 3; ++s) {
    ASSERT_TRUE(cursor.Seek(*log_, s, nullptr, &delta).ok());
    EXPECT_TRUE(cursor.last_delta_valid()) << "snapshot " << s;
    EXPECT_TRUE(cursor.last_delta().empty()) << "snapshot " << s;
    EXPECT_EQ(cursor.table().at(6), 4096u) << "snapshot " << s;
  }
  // Page 6's capture range [1,3] expires at 4: the advance reports it.
  ASSERT_TRUE(cursor.Seek(*log_, 4, nullptr, &delta).ok());
  ASSERT_TRUE(cursor.last_delta_valid());
  ASSERT_EQ(cursor.last_delta().size(), 1u);
  EXPECT_EQ(cursor.last_delta()[0], 6u);
  EXPECT_EQ(cursor.table().at(6), 8192u);
}

TEST_F(MaplogTest, SptCursorDeltaCoversExpiryGapAndReawakening) {
  // All three ways a page's mapping can move between consecutive
  // snapshots surface in the delta: expiry (page becomes shared with the
  // current state), an allocation gap closing (page appears), and a
  // capture ingested after the cursor's last advance (reawakening).
  ASSERT_TRUE(log_->AppendSnapshotMark(1).ok());
  ASSERT_TRUE(log_->AppendCapture(10, 1, 1, 4096).ok());  // expires at 2
  ASSERT_TRUE(log_->AppendAlloc(11, 1).ok());
  ASSERT_TRUE(log_->AppendSnapshotMark(2).ok());
  ASSERT_TRUE(log_->AppendCapture(11, 2, 2, 8192).ok());  // gap closes at 2

  SptCursor cursor;
  int64_t delta = 0;
  ASSERT_TRUE(cursor.Seek(*log_, 1, nullptr, &delta).ok());
  EXPECT_EQ(cursor.table().size(), 1u);
  ASSERT_TRUE(cursor.Seek(*log_, 2, nullptr, &delta).ok());
  ASSERT_TRUE(cursor.last_delta_valid());
  std::vector<storage::PageId> pages = cursor.last_delta();
  std::sort(pages.begin(), pages.end());
  EXPECT_EQ(pages, (std::vector<storage::PageId>{10, 11}));
  EXPECT_EQ(cursor.table().count(10), 0u);
  EXPECT_EQ(cursor.table().at(11), 8192u);

  // Page 10 is captured again only after the cursor reached snapshot 2;
  // the next advance must ingest the entry and report the page.
  ASSERT_TRUE(log_->AppendSnapshotMark(3).ok());
  ASSERT_TRUE(log_->AppendCapture(10, 2, 3, 12288).ok());
  ASSERT_TRUE(cursor.Seek(*log_, 3, nullptr, &delta).ok());
  ASSERT_TRUE(cursor.last_delta_valid());
  pages = cursor.last_delta();
  EXPECT_NE(std::find(pages.begin(), pages.end(), 10u), pages.end());
  EXPECT_EQ(cursor.table().at(10), 12288u);
}

TEST_F(MaplogTest, SptCursorDeltaAcrossTruncatedPrefix) {
  // After truncation the cursor can only rebase at keep_from (no
  // predecessor delta there), then advances normally above it.
  for (SnapshotId s = 1; s <= 6; ++s) {
    ASSERT_TRUE(log_->AppendSnapshotMark(s).ok());
    ASSERT_TRUE(log_->AppendCapture(8, s, s, s * 4096).ok());
  }
  ASSERT_TRUE(log_->AppendTruncate(4).ok());

  SptCursor cursor;
  int64_t delta = 0;
  EXPECT_FALSE(cursor.Seek(*log_, 3, nullptr, &delta).ok());
  ASSERT_TRUE(cursor.Seek(*log_, 4, nullptr, &delta).ok());
  EXPECT_FALSE(cursor.last_delta_valid());
  ASSERT_TRUE(cursor.Seek(*log_, 5, nullptr, &delta).ok());
  ASSERT_TRUE(cursor.last_delta_valid());
  ASSERT_EQ(cursor.last_delta().size(), 1u);
  EXPECT_EQ(cursor.last_delta()[0], 8u);
  EXPECT_EQ(cursor.table().at(8), 5u * 4096u);
}

TEST_F(MaplogTest, BoundariesSurviveReopen) {
  ASSERT_TRUE(log_->AppendSnapshotMark(1).ok());
  ASSERT_TRUE(log_->AppendCapture(10, 1, 1, 0).ok());
  ASSERT_TRUE(log_->AppendSnapshotMark(2).ok());
  log_.reset();

  auto reopened = Maplog::Open(&env_, "m.maplog");
  ASSERT_TRUE(reopened.ok());
  SnapshotPageTable spt;
  uint64_t resume = 0;
  ASSERT_TRUE((*reopened)->BuildSpt(1, &spt, &resume, nullptr).ok());
  EXPECT_EQ(spt.size(), 1u);
  ASSERT_TRUE((*reopened)->BuildSpt(2, &spt, &resume, nullptr).ok());
  EXPECT_TRUE(spt.empty());
}

TEST_F(MaplogTest, ReopenTruncatesPartialTailEntry) {
  ASSERT_TRUE(log_->AppendSnapshotMark(1).ok());
  ASSERT_TRUE(log_->AppendCapture(10, 1, 1, 4096).ok());
  uint64_t entries = log_->entry_count();
  uint64_t clean = log_->SizeBytes();
  log_.reset();

  // A crash mid-append leaves a partial trailing entry; reopen must
  // truncate back to the last complete entry.
  auto f = env_.OpenFile("m.maplog");
  ASSERT_TRUE(f.ok());
  uint64_t off;
  ASSERT_TRUE((*f)->Append(5, "torn!", &off).ok());
  f->reset();

  auto reopened = Maplog::Open(&env_, "m.maplog");
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->entry_count(), entries);
  EXPECT_EQ((*reopened)->SizeBytes(), clean);
  SnapshotPageTable spt;
  uint64_t resume = 0;
  ASSERT_TRUE((*reopened)->BuildSpt(1, &spt, &resume, nullptr).ok());
  EXPECT_EQ(spt.size(), 1u);
  EXPECT_EQ(spt[10], 4096u);
  // The recovered log still enforces sequential marks from the right spot.
  EXPECT_FALSE((*reopened)->AppendSnapshotMark(3).ok());
  ASSERT_TRUE((*reopened)->AppendSnapshotMark(2).ok());
}

}  // namespace
}  // namespace rql::retro

// Tests for EXPLAIN SELECT: the plan descriptions must reflect the access
// paths actually chosen (seq scan, native index, covering index,
// automatic transient index, pushdown filters, aggregation operators).

#include <gtest/gtest.h>

#include "sql/database.h"

namespace rql::sql {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(&env_, "t");
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    ASSERT_TRUE(db_->Exec("CREATE TABLE part (pk INTEGER, ptype TEXT)").ok());
    ASSERT_TRUE(db_->Exec(
        "CREATE TABLE item (fk INTEGER, price REAL, note TEXT)").ok());
    ASSERT_TRUE(db_->Exec("INSERT INTO part VALUES (1, 'TIN')").ok());
    ASSERT_TRUE(db_->Exec("INSERT INTO item VALUES (1, 2.0, 'x')").ok());
  }

  std::vector<std::string> Plan(const std::string& sql) {
    auto result = db_->Query("EXPLAIN " + sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    std::vector<std::string> lines;
    for (const Row& row : result->rows) lines.push_back(row[0].text());
    return lines;
  }

  static bool Contains(const std::vector<std::string>& lines,
                       const std::string& needle) {
    for (const std::string& line : lines) {
      if (line.find(needle) != std::string::npos) return true;
    }
    return false;
  }

  storage::InMemoryEnv env_;
  std::unique_ptr<Database> db_;
};

TEST_F(ExplainTest, SeqScan) {
  auto plan = Plan("SELECT * FROM part");
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0], "SCAN part");
}

TEST_F(ExplainTest, PushdownFilterMarked) {
  auto plan = Plan("SELECT pk FROM part WHERE ptype = 'TIN'");
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0], "SCAN part [filter]");
}

TEST_F(ExplainTest, TransientIndexJoin) {
  auto plan = Plan(
      "SELECT price FROM item, part WHERE pk = fk AND ptype = 'TIN'");
  EXPECT_TRUE(Contains(plan, "SCAN part [filter]")) << plan[0];
  EXPECT_TRUE(Contains(plan, "SEARCH item USING AUTOMATIC TRANSIENT INDEX "
                             "(fk=?)"));
}

TEST_F(ExplainTest, NativeIndexJoin) {
  ASSERT_TRUE(db_->Exec("CREATE INDEX item_fk ON item (fk)").ok());
  auto plan = Plan(
      "SELECT note FROM item, part WHERE pk = fk AND ptype = 'TIN'");
  EXPECT_TRUE(Contains(plan, "SEARCH item USING INDEX item_fk (fk=?)"));
}

TEST_F(ExplainTest, CoveringIndexJoin) {
  ASSERT_TRUE(
      db_->Exec("CREATE INDEX item_fk_price ON item (fk, price)").ok());
  auto plan = Plan(
      "SELECT SUM(price) FROM item, part WHERE pk = fk AND ptype = 'TIN'");
  EXPECT_TRUE(Contains(plan, "USING COVERING INDEX item_fk_price"))
      << (plan.empty() ? "" : plan[1]);
  EXPECT_TRUE(Contains(plan, "AGGREGATE"));
}

TEST_F(ExplainTest, AggregationOperators) {
  auto plan = Plan(
      "SELECT DISTINCT ptype, COUNT(*) FROM part GROUP BY ptype "
      "HAVING COUNT(*) > 0 ORDER BY ptype LIMIT 5");
  EXPECT_TRUE(Contains(plan, "GROUP BY (1 keys, 2 aggregates)"));
  EXPECT_TRUE(Contains(plan, "HAVING"));
  EXPECT_TRUE(Contains(plan, "DISTINCT"));
  EXPECT_TRUE(Contains(plan, "SORT (1 keys)"));
  EXPECT_TRUE(Contains(plan, "LIMIT 5"));
}

TEST_F(ExplainTest, ConstantRow) {
  auto plan = Plan("SELECT 1 + 1");
  EXPECT_TRUE(Contains(plan, "CONSTANT ROW"));
}

TEST_F(ExplainTest, AliasShown) {
  auto plan = Plan("SELECT p.pk FROM part p");
  EXPECT_EQ(plan[0], "SCAN part AS p");
}

TEST_F(ExplainTest, ExplainNonSelectRejected) {
  EXPECT_FALSE(db_->Exec("EXPLAIN DELETE FROM part").ok());
}

}  // namespace
}  // namespace rql::sql

// Integration tests for the query executor: multi-way joins, access-path
// equivalence (seq scan vs native vs covering vs transient index), LIMIT
// short-circuiting, grouping/sorting edge cases, and cross-time statements
// (CREATE TABLE AS / INSERT with AS OF sources).

#include <gtest/gtest.h>

#include "sql/database.h"

namespace rql::sql {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(&env_, "t");
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
  }

  void Ok(const std::string& sql) {
    Status s = db_->Exec(sql);
    ASSERT_TRUE(s.ok()) << sql << " -> " << s.ToString();
  }

  QueryResult Q(const std::string& sql) {
    auto r = db_->Query(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(*r) : QueryResult{};
  }

  storage::InMemoryEnv env_;
  std::unique_ptr<Database> db_;
};

TEST_F(ExecutorTest, ThreeWayJoin) {
  Ok("CREATE TABLE region (rid INTEGER, rname TEXT)");
  Ok("CREATE TABLE nation (nid INTEGER, rid INTEGER, nname TEXT)");
  Ok("CREATE TABLE city (cid INTEGER, nid INTEGER, cname TEXT)");
  Ok("INSERT INTO region VALUES (1, 'EU'), (2, 'NA')");
  Ok("INSERT INTO nation VALUES (10, 1, 'FR'), (11, 1, 'DE'), "
     "(12, 2, 'US')");
  Ok("INSERT INTO city VALUES (100, 10, 'Paris'), (101, 11, 'Berlin'), "
     "(102, 12, 'NYC'), (103, 12, 'SF')");

  QueryResult r = Q(
      "SELECT rname, nname, cname FROM region, nation, city "
      "WHERE region.rid = nation.rid AND nation.nid = city.nid "
      "ORDER BY cname");
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(r.rows[0][2].text(), "Berlin");
  EXPECT_EQ(r.rows[0][0].text(), "EU");
  EXPECT_EQ(r.rows[2][2].text(), "Paris");
  EXPECT_EQ(r.rows[3][0].text(), "NA");
}

TEST_F(ExecutorTest, CrossJoinWithoutPredicate) {
  Ok("CREATE TABLE a (x INTEGER)");
  Ok("CREATE TABLE b (y INTEGER)");
  Ok("INSERT INTO a VALUES (1), (2), (3)");
  Ok("INSERT INTO b VALUES (10), (20)");
  QueryResult r = Q("SELECT x, y FROM a, b ORDER BY x, y");
  ASSERT_EQ(r.rows.size(), 6u);
  EXPECT_EQ(r.rows[0][0].integer(), 1);
  EXPECT_EQ(r.rows[0][1].integer(), 10);
  EXPECT_EQ(r.rows[5][0].integer(), 3);
  EXPECT_EQ(r.rows[5][1].integer(), 20);
}

TEST_F(ExecutorTest, AccessPathsAgree) {
  // The same join answered via transient index, native index, and
  // covering index must produce identical results.
  Ok("CREATE TABLE f (k INTEGER, v REAL, tag TEXT)");
  Ok("CREATE TABLE d (k INTEGER, w INTEGER)");
  for (int i = 0; i < 60; ++i) {
    Ok("INSERT INTO f VALUES (" + std::to_string(i % 10) + ", " +
       std::to_string(i) + ".5, 't" + std::to_string(i) + "')");
  }
  for (int i = 0; i < 10; ++i) {
    Ok("INSERT INTO d VALUES (" + std::to_string(i) + ", " +
       std::to_string(i * 100) + ")");
  }
  const std::string join =
      "SELECT SUM(v) FROM f, d WHERE f.k = d.k AND w >= 300";

  auto transient = db_->QueryScalar(join);
  ASSERT_TRUE(transient.ok());
  EXPECT_TRUE(db_->last_stats().exec.used_transient_index);

  Ok("CREATE INDEX f_k ON f (k)");
  auto native = db_->QueryScalar(join);
  ASSERT_TRUE(native.ok());
  EXPECT_TRUE(db_->last_stats().exec.used_native_index);
  EXPECT_DOUBLE_EQ(transient->AsDouble(), native->AsDouble());

  Ok("DROP INDEX f_k");
  Ok("CREATE INDEX f_kv ON f (k, v)");
  auto covering = db_->QueryScalar(join);
  ASSERT_TRUE(covering.ok());
  EXPECT_DOUBLE_EQ(transient->AsDouble(), covering->AsDouble());
}

TEST_F(ExecutorTest, IndexOnlyAccessNotUsedWhenColumnsMissing) {
  Ok("CREATE TABLE f (k INTEGER, v REAL, tag TEXT)");
  Ok("CREATE TABLE d (k INTEGER)");
  Ok("CREATE INDEX f_k ON f (k)");  // does not cover tag
  Ok("INSERT INTO f VALUES (1, 2.0, 'keep')");
  Ok("INSERT INTO d VALUES (1)");
  QueryResult r = Q("SELECT tag FROM f, d WHERE f.k = d.k");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].text(), "keep");  // heap fetch fills tag
}

TEST_F(ExecutorTest, LimitStopsJoinEarly) {
  Ok("CREATE TABLE big (x INTEGER)");
  Ok("CREATE TABLE other (y INTEGER)");
  for (int i = 0; i < 200; ++i) {
    Ok("INSERT INTO big VALUES (" + std::to_string(i) + ")");
  }
  Ok("INSERT INTO other VALUES (1), (2)");
  QueryResult r = Q("SELECT x, y FROM big, other LIMIT 5");
  EXPECT_EQ(r.rows.size(), 5u);
  // The scan must not have visited all 400 combinations.
  EXPECT_LT(db_->last_stats().exec.rows_scanned, 400);
}

TEST_F(ExecutorTest, GroupByNullKey) {
  Ok("CREATE TABLE t (k INTEGER, v INTEGER)");
  Ok("INSERT INTO t VALUES (1, 10), (NULL, 20), (NULL, 30), (2, 40)");
  QueryResult r = Q(
      "SELECT k, SUM(v) AS s FROM t GROUP BY k ORDER BY s");
  ASSERT_EQ(r.rows.size(), 3u);
  // NULLs group together (SQL GROUP BY semantics).
  EXPECT_TRUE(r.rows[2][0].is_null());
  EXPECT_EQ(r.rows[2][1].integer(), 50);
}

TEST_F(ExecutorTest, DistinctTreatsNullsAsEqual) {
  Ok("CREATE TABLE t (v INTEGER)");
  Ok("INSERT INTO t VALUES (NULL), (NULL), (1), (1)");
  QueryResult r = Q("SELECT DISTINCT v FROM t");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(ExecutorTest, MultiKeySortMixedDirections) {
  Ok("CREATE TABLE t (a INTEGER, b TEXT)");
  Ok("INSERT INTO t VALUES (1, 'z'), (1, 'a'), (2, 'm'), (2, 'b')");
  QueryResult r = Q("SELECT a, b FROM t ORDER BY a DESC, b ASC");
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(r.rows[0][0].integer(), 2);
  EXPECT_EQ(r.rows[0][1].text(), "b");
  EXPECT_EQ(r.rows[3][1].text(), "z");
}

TEST_F(ExecutorTest, CreateTableAsSelectAsOf) {
  Ok("CREATE TABLE t (v INTEGER)");
  Ok("INSERT INTO t VALUES (1), (2)");
  Ok("BEGIN; COMMIT WITH SNAPSHOT;");
  Ok("INSERT INTO t VALUES (3)");
  // Materialize a past state into a fresh table (retrospective CTAS).
  Ok("CREATE TABLE t_past AS SELECT AS OF 1 v FROM t");
  EXPECT_EQ(Q("SELECT COUNT(*) FROM t_past").rows[0][0].integer(), 2);
  EXPECT_EQ(Q("SELECT COUNT(*) FROM t").rows[0][0].integer(), 3);
}

TEST_F(ExecutorTest, InsertSelectAsOfRestoresDeletedRows) {
  Ok("CREATE TABLE t (v INTEGER)");
  Ok("INSERT INTO t VALUES (1), (2), (3)");
  Ok("BEGIN; COMMIT WITH SNAPSHOT;");
  Ok("DELETE FROM t");
  // Point-in-time restore via INSERT ... SELECT AS OF.
  Ok("INSERT INTO t SELECT AS OF 1 v FROM t");
  QueryResult r = Q("SELECT v FROM t ORDER BY v");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[2][0].integer(), 3);
}

TEST_F(ExecutorTest, JoinInsideAsOfSnapshot) {
  Ok("CREATE TABLE p (id INTEGER, name TEXT)");
  Ok("CREATE TABLE c (pid INTEGER, amount REAL)");
  Ok("INSERT INTO p VALUES (1, 'x'), (2, 'y')");
  Ok("INSERT INTO c VALUES (1, 5.0), (2, 7.0)");
  Ok("BEGIN; COMMIT WITH SNAPSHOT;");
  Ok("DELETE FROM c WHERE pid = 2");
  auto past = db_->QueryScalar(
      "SELECT AS OF 1 SUM(amount) FROM p, c WHERE id = pid");
  auto now = db_->QueryScalar(
      "SELECT SUM(amount) FROM p, c WHERE id = pid");
  ASSERT_TRUE(past.ok() && now.ok());
  EXPECT_DOUBLE_EQ(past->AsDouble(), 12.0);
  EXPECT_DOUBLE_EQ(now->AsDouble(), 5.0);
}

TEST_F(ExecutorTest, IndexRangeScanMatchesSeqScan) {
  Ok("CREATE TABLE k (id INTEGER, v TEXT)");
  for (int i = 0; i < 300; ++i) {
    Ok("INSERT INTO k VALUES (" + std::to_string(i * 3 % 299) + ", 'v" +
       std::to_string(i) + "')");
  }
  const char* queries[] = {
      "SELECT COUNT(*) FROM k WHERE id = 42",
      "SELECT COUNT(*) FROM k WHERE id >= 100 AND id <= 200",
      "SELECT COUNT(*) FROM k WHERE id > 250",
      "SELECT COUNT(*) FROM k WHERE id < 10",
      "SELECT COUNT(*) FROM k WHERE 50 <= id AND 60 > id",
      "SELECT SUM(id) FROM k WHERE id BETWEEN 10 AND 20",
  };
  std::vector<Value> before;
  for (const char* q : queries) {
    auto v = db_->QueryScalar(q);
    ASSERT_TRUE(v.ok()) << q;
    EXPECT_FALSE(db_->last_stats().exec.used_native_index);
    before.push_back(*v);
  }
  Ok("CREATE INDEX k_id ON k (id)");
  for (size_t i = 0; i < std::size(queries); ++i) {
    auto v = db_->QueryScalar(queries[i]);
    ASSERT_TRUE(v.ok()) << queries[i];
    EXPECT_TRUE(db_->last_stats().exec.used_native_index) << queries[i];
    EXPECT_EQ(CompareValues(*v, before[i]), 0) << queries[i];
  }
  // The range scan must visit fewer rows than the table holds.
  ASSERT_TRUE(db_->QueryScalar("SELECT COUNT(*) FROM k WHERE id = 42").ok());
  EXPECT_LT(db_->last_stats().exec.rows_scanned, 50);
}

TEST_F(ExecutorTest, IndexRangeScanExplain) {
  Ok("CREATE TABLE k (id INTEGER, v TEXT)");
  Ok("CREATE INDEX k_id ON k (id)");
  Ok("INSERT INTO k VALUES (1, 'a')");
  QueryResult eq = Q("EXPLAIN SELECT v FROM k WHERE id = 1");
  EXPECT_NE(eq.rows[0][0].text().find("SEARCH k USING INDEX k_id (id=?)"),
            std::string::npos)
      << eq.rows[0][0].text();
  QueryResult range = Q("EXPLAIN SELECT v FROM k WHERE id > 1 AND id < 9");
  EXPECT_NE(range.rows[0][0].text().find("k_id (id range)"),
            std::string::npos)
      << range.rows[0][0].text();
  // Covering: only indexed columns referenced.
  QueryResult covering = Q("EXPLAIN SELECT id FROM k WHERE id = 1");
  EXPECT_NE(covering.rows[0][0].text().find("COVERING INDEX"),
            std::string::npos)
      << covering.rows[0][0].text();
  // Unbounded predicates on other columns stay sequential.
  QueryResult seq = Q("EXPLAIN SELECT v FROM k WHERE v = 'a'");
  EXPECT_NE(seq.rows[0][0].text().find("SCAN k"), std::string::npos);
}

TEST_F(ExecutorTest, IndexRangeScanAsOf) {
  Ok("CREATE TABLE k (id INTEGER)");
  Ok("CREATE INDEX k_id ON k (id)");
  Ok("INSERT INTO k VALUES (1), (2), (3)");
  Ok("BEGIN; COMMIT WITH SNAPSHOT;");
  Ok("DELETE FROM k WHERE id = 2");
  auto past = db_->QueryScalar("SELECT AS OF 1 COUNT(*) FROM k WHERE id >= 2");
  auto now = db_->QueryScalar("SELECT COUNT(*) FROM k WHERE id >= 2");
  ASSERT_TRUE(past.ok() && now.ok());
  EXPECT_EQ(past->integer(), 2);
  EXPECT_EQ(now->integer(), 1);
}

TEST_F(ExecutorTest, SelfJoinViaAliases) {
  Ok("CREATE TABLE e (id INTEGER, boss INTEGER, name TEXT)");
  Ok("INSERT INTO e VALUES (1, NULL, 'ceo'), (2, 1, 'vp'), (3, 2, 'ic')");
  QueryResult r = Q(
      "SELECT w.name, m.name FROM e w, e m WHERE w.boss = m.id "
      "ORDER BY w.id");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].text(), "vp");
  EXPECT_EQ(r.rows[0][1].text(), "ceo");
  EXPECT_EQ(r.rows[1][0].text(), "ic");
  EXPECT_EQ(r.rows[1][1].text(), "vp");
}

TEST_F(ExecutorTest, EmptyInputsEverywhere) {
  Ok("CREATE TABLE t (v INTEGER)");
  EXPECT_EQ(Q("SELECT * FROM t").rows.size(), 0u);
  EXPECT_EQ(Q("SELECT v FROM t ORDER BY v LIMIT 3").rows.size(), 0u);
  EXPECT_EQ(Q("SELECT v, COUNT(*) FROM t GROUP BY v").rows.size(), 0u);
  EXPECT_EQ(Q("SELECT COUNT(*) FROM t").rows[0][0].integer(), 0);
  Ok("CREATE TABLE u (w INTEGER)");
  Ok("INSERT INTO u VALUES (1)");
  EXPECT_EQ(Q("SELECT * FROM t, u WHERE v = w").rows.size(), 0u);
}

TEST_F(ExecutorTest, HavingWithoutGroupBy) {
  Ok("CREATE TABLE t (v INTEGER)");
  Ok("INSERT INTO t VALUES (1), (2)");
  EXPECT_EQ(Q("SELECT SUM(v) FROM t HAVING COUNT(*) > 1").rows.size(), 1u);
  EXPECT_EQ(Q("SELECT SUM(v) FROM t HAVING COUNT(*) > 5").rows.size(), 0u);
}

TEST_F(ExecutorTest, AggregatesInsideExpressions) {
  Ok("CREATE TABLE t (v INTEGER)");
  Ok("INSERT INTO t VALUES (2), (4), (6)");
  auto r = db_->QueryScalar("SELECT MAX(v) - MIN(v) + COUNT(*) FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->integer(), 7);
  auto avg2 = db_->QueryScalar("SELECT SUM(v) / COUNT(*) FROM t");
  ASSERT_TRUE(avg2.ok());
  EXPECT_EQ(avg2->AsInt(), 4);
}

}  // namespace
}  // namespace rql::sql

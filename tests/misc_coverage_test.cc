// Cross-cutting coverage: the function registry's dispatch rules, B+-tree
// key limits, PosixEnv end-to-end operation, and parallel-vs-serial RQL
// equivalence on randomized histories.

#include <gtest/gtest.h>

#include <cstdio>

#include "common/random.h"
#include "rql/rql.h"
#include "sql/btree.h"
#include "sql/database.h"

namespace rql {
namespace {

using sql::Row;
using sql::Value;

TEST(FunctionRegistryTest, ArgumentCountValidation) {
  storage::InMemoryEnv env;
  auto db = sql::Database::Open(&env, "t");
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE((*db)->Query("SELECT ABS()").ok());
  EXPECT_FALSE((*db)->Query("SELECT ABS(1, 2)").ok());
  EXPECT_FALSE((*db)->Query("SELECT SUBSTR('x')").ok());
  EXPECT_TRUE((*db)->Query("SELECT COALESCE(1, 2, 3, 4, 5)").ok());
  EXPECT_FALSE((*db)->Query("SELECT no_such_function(1)").ok());
}

TEST(FunctionRegistryTest, UdfOverridesAndErrors) {
  storage::InMemoryEnv env;
  auto db = sql::Database::Open(&env, "t");
  ASSERT_TRUE(db.ok());
  // Re-registering replaces the implementation.
  (*db)->RegisterFunction("abs", 1, 1,
                          [](const std::vector<Value>&) -> Result<Value> {
                            return Value::Text("overridden");
                          });
  auto v = (*db)->QueryScalar("SELECT ABS(-5)");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->text(), "overridden");
  // A UDF error aborts the statement with the UDF's status.
  (*db)->RegisterFunction("boom", 0, 0,
                          [](const std::vector<Value>&) -> Result<Value> {
                            return Status::Aborted("kaboom");
                          });
  Status s = (*db)->Exec("SELECT boom()");
  EXPECT_EQ(s.code(), StatusCode::kAborted);
}

TEST(BtreeLimitsTest, OversizedKeyRejected) {
  storage::InMemoryEnv env;
  auto store = retro::SnapshotStore::Open(&env, "t");
  ASSERT_TRUE(store.ok());
  auto root = sql::BTree::Create(store->get());
  ASSERT_TRUE(root.ok());
  sql::BTree tree(store->get(), *root);
  Row huge_key = {Value::Text(std::string(8000, 'x'))};
  EXPECT_FALSE(tree.Insert(huge_key, 1).ok());
  // The tree stays usable.
  EXPECT_TRUE(tree.Insert({Value::Integer(1)}, 1).ok());
}

TEST(PosixEndToEndTest, DatabasePersistsOnRealFiles) {
  storage::PosixEnv env;
  const std::string prefix = "/tmp/rql_posix_e2e";
  for (const char* suffix :
       {".db", ".db.wal", ".pagelog", ".maplog"}) {
    std::remove((prefix + suffix).c_str());
  }
  {
    auto db = sql::Database::Open(&env, prefix);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE((*db)->Exec("CREATE TABLE t (v INTEGER)").ok());
    ASSERT_TRUE((*db)->Exec("INSERT INTO t VALUES (1), (2)").ok());
    ASSERT_TRUE((*db)->Exec("BEGIN; COMMIT WITH SNAPSHOT;").ok());
    ASSERT_TRUE((*db)->Exec("DELETE FROM t WHERE v = 1").ok());
  }
  {
    auto db = sql::Database::Open(&env, prefix);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto now = (*db)->QueryScalar("SELECT COUNT(*) FROM t");
    auto past = (*db)->QueryScalar("SELECT AS OF 1 COUNT(*) FROM t");
    ASSERT_TRUE(now.ok() && past.ok());
    EXPECT_EQ(now->integer(), 1);
    EXPECT_EQ(past->integer(), 2);
    // Retention works on real files too (rename-based swap).
    ASSERT_TRUE((*db)->store()->TruncateHistory(2).ok());
    EXPECT_FALSE((*db)->Query("SELECT AS OF 1 * FROM t").ok());
  }
  for (const char* suffix :
       {".db", ".db.wal", ".pagelog", ".maplog"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST(ParallelEquivalenceTest, RandomHistoriesMatchSerial) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    storage::InMemoryEnv env;
    auto data = sql::Database::Open(&env, "d");
    auto meta = sql::Database::Open(&env, "m");
    ASSERT_TRUE(data.ok() && meta.ok());
    RqlEngine engine(data->get(), meta->get());
    ASSERT_TRUE(engine.EnsureSnapIds().ok());
    ASSERT_TRUE(
        (*data)->Exec("CREATE TABLE t (g INTEGER, v INTEGER)").ok());
    Random rng(seed * 31);
    for (int s = 0; s < 14; ++s) {
      ASSERT_TRUE((*data)->Exec("BEGIN").ok());
      for (int i = 0; i < 6; ++i) {
        ASSERT_TRUE((*data)
                        ->Exec("INSERT INTO t VALUES (" +
                               std::to_string(rng.Uniform(5)) + ", " +
                               std::to_string(rng.Uniform(1000)) + ")")
                        .ok());
      }
      ASSERT_TRUE((*data)
                      ->Exec("DELETE FROM t WHERE v % 5 = " +
                             std::to_string(rng.Uniform(5)))
                      .ok());
      ASSERT_TRUE(engine.CommitWithSnapshot("t").ok());
    }
    const char* qq =
        "SELECT g, SUM(v) AS s, current_snapshot() AS sid "
        "FROM t GROUP BY g";
    ASSERT_TRUE(
        engine.CollateData("SELECT snap_id FROM SnapIds", qq, "A").ok());
    engine.mutable_options()->parallel_workers = 4;
    ASSERT_TRUE(
        engine.CollateData("SELECT snap_id FROM SnapIds", qq, "B").ok());
    engine.mutable_options()->parallel_workers = 1;

    auto a = (*meta)->Query("SELECT g, s, sid FROM A ORDER BY sid, g");
    auto b = (*meta)->Query("SELECT g, s, sid FROM B ORDER BY sid, g");
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->rows.size(), b->rows.size()) << "seed " << seed;
    for (size_t i = 0; i < a->rows.size(); ++i) {
      for (size_t c = 0; c < 3; ++c) {
        EXPECT_EQ(sql::CompareValues(a->rows[i][c], b->rows[i][c]), 0)
            << "seed " << seed << " row " << i;
      }
    }
  }
}

}  // namespace
}  // namespace rql

// Concurrency tests for the snapshot store: the paper's operational claim
// is that snapshot queries run concurrently with update transactions and
// stay transactionally consistent (Retro gets this from BDB's MVCC; here
// the store serializes page operations internally, so the *correctness*
// property is what we verify).

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "common/random.h"
#include "retro/snapshot_store.h"

namespace rql::retro {
namespace {

using storage::Page;
using storage::PageId;

Page TaggedPage(uint64_t tag) {
  Page p;
  p.Zero();
  p.WriteU64(0, tag);
  p.WriteU64(2048, tag * 31);
  return p;
}

TEST(ConcurrencyTest, SnapshotReadersRunConcurrentlyWithUpdates) {
  storage::InMemoryEnv env;
  auto opened = SnapshotStore::Open(&env, "c");
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<SnapshotStore> store = std::move(*opened);

  constexpr int kPages = 16;
  constexpr int kRounds = 120;
  constexpr int kReaders = 4;

  std::vector<PageId> pages;
  for (int i = 0; i < kPages; ++i) {
    auto id = store->AllocatePage();
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(store->WritePage(*id, TaggedPage(0)).ok());
    pages.push_back(*id);
  }

  // Per declared snapshot, the tag every page held at declaration time.
  std::mutex expected_mu;
  std::map<SnapshotId, uint64_t> expected_tag;
  std::atomic<SnapshotId> published{kNoSnapshot};
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::thread writer([&] {
    for (uint64_t round = 1; round <= kRounds; ++round) {
      Status s = store->Begin();
      if (!s.ok()) { ++failures; break; }
      for (PageId id : pages) {
        if (!store->WritePage(id, TaggedPage(round)).ok()) ++failures;
      }
      SnapshotId snap = kNoSnapshot;
      if (!store->Commit(/*declare_snapshot=*/true, &snap).ok()) {
        ++failures;
        break;
      }
      {
        std::lock_guard<std::mutex> lock(expected_mu);
        expected_tag[snap] = round;
      }
      published.store(snap, std::memory_order_release);
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  std::atomic<int64_t> reads{0};
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Random rng(static_cast<uint64_t>(r) + 1);
      while (!done.load(std::memory_order_acquire)) {
        SnapshotId latest = published.load(std::memory_order_acquire);
        if (latest == kNoSnapshot) continue;
        auto snap = static_cast<SnapshotId>(
            1 + rng.Uniform(latest));
        uint64_t want;
        {
          std::lock_guard<std::mutex> lock(expected_mu);
          auto it = expected_tag.find(snap);
          if (it == expected_tag.end()) continue;
          want = it->second;
        }
        auto view = store->OpenSnapshot(snap);
        if (!view.ok()) { ++failures; continue; }
        for (PageId id : pages) {
          Page page;
          if (!(*view)->ReadPage(id, &page).ok()) { ++failures; continue; }
          if (page.ReadU64(0) != want || page.ReadU64(2048) != want * 31) {
            ++failures;
          }
          ++reads;
        }
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(reads.load(), 0);

  // Post-hoc: every snapshot's state is still exact.
  for (const auto& [snap, want] : expected_tag) {
    auto view = store->OpenSnapshot(snap);
    ASSERT_TRUE(view.ok());
    Page page;
    ASSERT_TRUE((*view)->ReadPage(pages[0], &page).ok());
    EXPECT_EQ(page.ReadU64(0), want) << "snapshot " << snap;
  }
}

// K threads of random snapshot reads against a fault-free store, each read
// checked against an oracle computed sequentially while history was built.
// With the cache cleared first, racing readers reconstruct the same archived
// pages concurrently, exercising the sharded cache and single-flight loads.
TEST(ConcurrencyTest, RandomSnapshotReadsMatchSequentialOracle) {
  storage::InMemoryEnv env;
  auto opened = SnapshotStore::Open(&env, "c3");
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<SnapshotStore> store = std::move(*opened);

  constexpr int kPages = 12;
  constexpr int kSnapshots = 40;
  constexpr int kThreads = 8;
  constexpr int kReadsPerThread = 400;

  std::vector<PageId> pages;
  for (int i = 0; i < kPages; ++i) {
    auto id = store->AllocatePage();
    ASSERT_TRUE(id.ok());
    pages.push_back(*id);
  }

  // Build history sequentially; each snapshot overwrites a pseudo-random
  // subset of pages, so the oracle is the carried-forward per-page tag.
  std::vector<SnapshotId> snaps;
  std::vector<std::vector<uint64_t>> oracle;  // [snap index][page index]
  std::vector<uint64_t> current(kPages, 0);
  Random build_rng(17);
  for (int p = 0; p < kPages; ++p) {
    current[p] = 1000 + static_cast<uint64_t>(p);
    ASSERT_TRUE(store->WritePage(pages[p], TaggedPage(current[p])).ok());
  }
  for (int s = 0; s < kSnapshots; ++s) {
    auto snap = store->DeclareSnapshot();
    ASSERT_TRUE(snap.ok());
    snaps.push_back(*snap);
    oracle.push_back(current);
    int writes = 1 + static_cast<int>(build_rng.Uniform(kPages));
    for (int w = 0; w < writes; ++w) {
      int p = static_cast<int>(build_rng.Uniform(kPages));
      current[p] = static_cast<uint64_t>(s + 1) * 100 + p;
      ASSERT_TRUE(store->WritePage(pages[p], TaggedPage(current[p])).ok());
    }
  }

  // Cold start: force every archived read to hit the Pagelog at least once.
  store->ClearSnapshotCache();
  store->stats()->Reset();

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(static_cast<uint64_t>(t) * 7919 + 1);
      for (int i = 0; i < kReadsPerThread; ++i) {
        int s = static_cast<int>(rng.Uniform(kSnapshots));
        auto view = store->OpenSnapshot(snaps[s]);
        if (!view.ok()) { ++failures; continue; }
        // A few pages per view: page reconstruction interleaves with the
        // other threads' reads of the same and different snapshots.
        for (int j = 0; j < 3; ++j) {
          int p = static_cast<int>(rng.Uniform(kPages));
          Page page;
          if (!(*view)->ReadPage(pages[p], &page).ok()) { ++failures; continue; }
          uint64_t want = oracle[s][p];
          if (page.ReadU64(0) != want || page.ReadU64(2048) != want * 31) {
            ++failures;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // The store stays fully usable (and exact) after the storm.
  for (int s = 0; s < kSnapshots; ++s) {
    auto view = store->OpenSnapshot(snaps[s]);
    ASSERT_TRUE(view.ok());
    for (int p = 0; p < kPages; ++p) {
      Page page;
      ASSERT_TRUE((*view)->ReadPage(pages[p], &page).ok());
      EXPECT_EQ(page.ReadU64(0), oracle[s][p])
          << "snapshot " << snaps[s] << " page " << p;
    }
  }
}

TEST(ConcurrencyTest, ViewOpenedBeforeConcurrentOverwriteStaysConsistent) {
  storage::InMemoryEnv env;
  auto opened = SnapshotStore::Open(&env, "c2");
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<SnapshotStore> store = std::move(*opened);

  auto id = store->AllocatePage();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store->WritePage(*id, TaggedPage(1)).ok());
  auto snap = store->DeclareSnapshot();
  ASSERT_TRUE(snap.ok());

  // Open the view while the page is still shared with the database, then
  // overwrite from another thread. Every read of the view — interleaved
  // arbitrarily with the writes — must see the declaration-time state.
  auto view = store->OpenSnapshot(*snap);
  ASSERT_TRUE(view.ok());

  std::atomic<bool> start{false};
  std::atomic<int> bad{0};
  std::thread writer([&] {
    while (!start.load()) {}
    for (uint64_t round = 2; round < 50; ++round) {
      if (!store->WritePage(*id, TaggedPage(round)).ok()) ++bad;
    }
  });
  std::thread reader([&] {
    while (!start.load()) {}
    for (int i = 0; i < 200; ++i) {
      Page page;
      if (!(*view)->ReadPage(*id, &page).ok() || page.ReadU64(0) != 1) {
        ++bad;
      }
    }
  });
  start.store(true);
  writer.join();
  reader.join();
  EXPECT_EQ(bad.load(), 0);
}

}  // namespace
}  // namespace rql::retro

// rql_serverd end-to-end: session lifecycle over the wire protocol,
// admission-control rejection, cooperative cancellation mid-run (store
// left fully reusable), prepared statements with per-session AS OF plan
// state, idle-session reaping, and the concurrency gate — four socket
// clients running staggered CollateData intervals concurrently, byte-
// identical to an in-process sequential oracle, with the shared scan
// cache showing actual cross-run sharing.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "rql/rql.h"
#include "server/client.h"
#include "server/server.h"
#include "sql/database.h"
#include "storage/env.h"

namespace rql::server {
namespace {

using sql::Row;
using sql::Value;

std::string UniqueSocketPath() {
  static std::atomic<int> counter{0};
  return "/tmp/rql_server_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// Owner databases + a history: table t(k, v), 600 rows, `snapshots`
/// snapshots each bumping v on a sliding key subset (the
/// shared_scan_cache_test fixture shape).
struct HistoryFixture {
  std::unique_ptr<storage::InMemoryEnv> env =
      std::make_unique<storage::InMemoryEnv>();
  std::unique_ptr<sql::Database> data;
  std::unique_ptr<sql::Database> meta;
  std::unique_ptr<RqlEngine> engine;
  retro::SnapshotId last_snap = retro::kNoSnapshot;
};

HistoryFixture MakeHistory(int snapshots) {
  HistoryFixture f;
  auto data = sql::Database::Open(f.env.get(), "data");
  auto meta = sql::Database::Open(f.env.get(), "meta");
  EXPECT_TRUE(data.ok() && meta.ok());
  f.data = std::move(*data);
  f.meta = std::move(*meta);
  f.engine = std::make_unique<RqlEngine>(f.data.get(), f.meta.get());
  EXPECT_TRUE(f.engine->EnsureSnapIds().ok());
  EXPECT_TRUE(f.data->Exec("CREATE TABLE t (k INTEGER, v INTEGER)").ok());
  for (int k = 0; k < 600; ++k) {
    EXPECT_TRUE(
        f.data->AppendRow("t", {Value::Integer(k), Value::Integer(k * 10)})
            .ok());
  }
  for (int s = 0; s < snapshots; ++s) {
    EXPECT_TRUE(f.data->Exec("BEGIN").ok());
    EXPECT_TRUE(f.data
                    ->Exec("UPDATE t SET v = v + 1 WHERE k % 37 = " +
                           std::to_string(s % 37))
                    .ok());
    auto snap = f.engine->CommitWithSnapshot("ts-" + std::to_string(s));
    EXPECT_TRUE(snap.ok());
    if (snap.ok()) f.last_snap = *snap;
  }
  return f;
}

std::string QsRange(retro::SnapshotId first, retro::SnapshotId last) {
  return "SELECT snap_id FROM SnapIds WHERE snap_id >= " +
         std::to_string(first) + " AND snap_id <= " + std::to_string(last) +
         " ORDER BY snap_id";
}

constexpr char kQq[] = "SELECT k, v FROM t WHERE v % 3 = 0";

std::vector<std::string> EncodeRows(const sql::QueryResult& result) {
  std::vector<std::string> out;
  out.reserve(result.rows.size());
  for (const Row& row : result.rows) out.push_back(sql::EncodeRow(row));
  return out;
}

/// Polls until `server` has no active session (disconnect teardown is
/// asynchronous w.r.t. the client's close).
void WaitForNoSessions(Server* server) {
  for (int i = 0; i < 200 && server->active_sessions() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server->active_sessions(), 0);
}

TEST(ServerTest, SessionLifecycle) {
  HistoryFixture f = MakeHistory(6);
  ServerOptions options;
  options.socket_path = UniqueSocketPath();
  auto server = Server::Create(f.data.get(), f.meta.get(), options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  ASSERT_TRUE((*server)->Start().ok());

  auto client = Client::Connect(options.socket_path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_GT((*client)->session_id(), 0u);
  EXPECT_EQ((*server)->active_sessions(), 1);

  // Snapshot read over the attached handle, byte-identical to a local
  // query on the owning handle.
  const std::string read = "SELECT AS OF 3 k, v FROM t WHERE k < 40";
  auto remote = (*client)->Sql(read);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  auto local = f.data->Query(read);
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(EncodeRows(*remote), EncodeRows(*local));

  // Snapshot declaration goes through the owning engine and lands in the
  // canonical SnapIds every session sees.
  auto snap = (*client)->DeclareSnapshot("from-wire");
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(*snap, f.last_snap + 1);
  auto snaps = (*client)->ListSnapshots();
  ASSERT_TRUE(snaps.ok());
  EXPECT_EQ(snaps->rows.size(), static_cast<size_t>(f.last_snap) + 1);

  // A scheduled run: mechanism result lands in the session's private
  // metadata database, readable via kMetaSql.
  auto run = (*client)->StartRun(Mechanism::kCollateData,
                                 QsRange(1, f.last_snap), kQq, "Out");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  auto done = (*client)->WaitRun(*run);
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  EXPECT_TRUE(done->status.ok()) << done->status.ToString();
  EXPECT_EQ(done->iterations, static_cast<uint32_t>(f.last_snap));
  auto out = (*client)->MetaSql("SELECT COUNT(*) FROM Out");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->rows.size(), 1u);
  EXPECT_GT(out->rows[0][0].AsInt(), 0);

  // Schema listing reads the always-fresh owner catalog.
  auto tables = (*client)->ListSchema(false);
  ASSERT_TRUE(tables.ok());
  ASSERT_EQ(tables->rows.size(), 1u);
  EXPECT_EQ(tables->rows[0][0].ToString(), "t");

  auto stats = (*client)->StatsJson();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("\"active_sessions\": 1"), std::string::npos);
  EXPECT_NE(stats->find("\"scheduler\""), std::string::npos);

  client->reset();  // goodbye
  WaitForNoSessions(server->get());
  (*server)->Stop();
}

TEST(ServerTest, CancelMidRunLeavesStoreReusable) {
  HistoryFixture f = MakeHistory(12);
  // Make every iteration pay real (simulated) archive latency so the run
  // is reliably still executing when the cancel lands.
  f.data->store()->set_simulated_archive_latency_us(5000);
  ServerOptions options;
  options.socket_path = UniqueSocketPath();
  auto server = Server::Create(f.data.get(), f.meta.get(), options);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());

  auto client = Client::Connect(options.socket_path);
  ASSERT_TRUE(client.ok());
  auto run = (*client)->StartRun(Mechanism::kCollateData,
                                 QsRange(1, f.last_snap), kQq, "Out");
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE((*client)->CancelRun(*run).ok());
  auto done = (*client)->WaitRun(*run);
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  EXPECT_EQ(done->status.code(), StatusCode::kAborted)
      << done->status.ToString();

  // Cancelling an unknown run id is a clean NotFound, not a hang.
  Status missing = (*client)->CancelRun(999999);
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);

  // The store must be fully reusable after the abort: the same session
  // runs the same mechanism to completion and the result matches the
  // sequential in-process oracle.
  f.data->store()->set_simulated_archive_latency_us(0);
  run = (*client)->StartRun(Mechanism::kCollateData, QsRange(1, f.last_snap),
                            kQq, "Out");
  ASSERT_TRUE(run.ok());
  done = (*client)->WaitRun(*run);
  ASSERT_TRUE(done.ok());
  EXPECT_TRUE(done->status.ok()) << done->status.ToString();
  auto remote_rows = (*client)->MetaSql("SELECT * FROM Out");
  ASSERT_TRUE(remote_rows.ok());

  ASSERT_TRUE(f.engine->CollateData(QsRange(1, f.last_snap), kQq, "Oracle")
                  .ok());
  auto oracle = f.meta->Query("SELECT * FROM Oracle");
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(EncodeRows(*remote_rows), EncodeRows(*oracle));

  client->reset();
  WaitForNoSessions(server->get());
  (*server)->Stop();
}

TEST(ServerTest, DisconnectMidRunReleasesSchedulerSlots) {
  HistoryFixture f = MakeHistory(12);
  f.data->store()->set_simulated_archive_latency_us(5000);
  ServerOptions options;
  options.socket_path = UniqueSocketPath();
  options.scheduler.dispatch_threads = 1;
  auto server = Server::Create(f.data.get(), f.meta.get(), options);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());

  {
    auto client = Client::Connect(options.socket_path);
    ASSERT_TRUE(client.ok());
    auto run = (*client)->StartRun(Mechanism::kCollateData,
                                   QsRange(1, f.last_snap), kQq, "Out");
    ASSERT_TRUE(run.ok());
    // Disconnect while the run is executing: teardown must cancel it,
    // wait it out of the scheduler and release the session.
  }
  WaitForNoSessions(server->get());
  EXPECT_EQ((*server)->scheduler()->active(), 0);
  EXPECT_EQ((*server)->scheduler()->queued(), 0);

  // The single dispatch thread must be free again for a new session.
  f.data->store()->set_simulated_archive_latency_us(0);
  auto client = Client::Connect(options.socket_path);
  ASSERT_TRUE(client.ok());
  auto run = (*client)->StartRun(Mechanism::kCollateData,
                                 QsRange(1, f.last_snap), kQq, "Out");
  ASSERT_TRUE(run.ok());
  auto done = (*client)->WaitRun(*run);
  ASSERT_TRUE(done.ok());
  EXPECT_TRUE(done->status.ok()) << done->status.ToString();

  client->reset();
  WaitForNoSessions(server->get());
  (*server)->Stop();
}

TEST(ServerTest, AdmissionControlRejectsWhenQueueFull) {
  HistoryFixture f = MakeHistory(8);
  f.data->store()->set_simulated_archive_latency_us(5000);
  ServerOptions options;
  options.socket_path = UniqueSocketPath();
  options.scheduler.dispatch_threads = 1;
  options.scheduler.queue_limit = 1;
  auto server = Server::Create(f.data.get(), f.meta.get(), options);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());

  auto c1 = Client::Connect(options.socket_path);
  auto c2 = Client::Connect(options.socket_path);
  auto c3 = Client::Connect(options.socket_path);
  ASSERT_TRUE(c1.ok() && c2.ok() && c3.ok());

  // Run 1 occupies the only dispatch thread (slow archive); wait until it
  // leaves the queue.
  auto r1 = (*c1)->StartRun(Mechanism::kCollateData, QsRange(1, f.last_snap),
                            kQq, "Out");
  ASSERT_TRUE(r1.ok());
  for (int i = 0; i < 200 && (*server)->scheduler()->active() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ((*server)->scheduler()->active(), 1);

  // Run 2 fills the queue (limit 1); run 3 must be rejected at admission.
  auto r2 = (*c2)->StartRun(Mechanism::kCollateData, QsRange(1, f.last_snap),
                            kQq, "Out");
  ASSERT_TRUE(r2.ok());
  auto r3 = (*c3)->StartRun(Mechanism::kCollateData, QsRange(1, f.last_snap),
                            kQq, "Out");
  ASSERT_FALSE(r3.ok());
  EXPECT_EQ(r3.status().code(), StatusCode::kAborted);
  EXPECT_NE(r3.status().message().find("admission control"),
            std::string::npos)
      << r3.status().ToString();
  EXPECT_GE((*server)->scheduler()->admission_rejects(), 1);

  // Drain: cancel both admitted runs and wait them out.
  ASSERT_TRUE((*c1)->CancelRun(*r1).ok());
  ASSERT_TRUE((*c2)->CancelRun(*r2).ok());
  auto d1 = (*c1)->WaitRun(*r1);
  auto d2 = (*c2)->WaitRun(*r2);
  ASSERT_TRUE(d1.ok() && d2.ok());
  EXPECT_EQ(d2->status.code(), StatusCode::kAborted);

  c1->reset();
  c2->reset();
  c3->reset();
  WaitForNoSessions(server->get());
  (*server)->Stop();
}

TEST(ServerTest, PreparedStatementsOverWire) {
  HistoryFixture f = MakeHistory(6);
  ServerOptions options;
  options.socket_path = UniqueSocketPath();
  auto server = Server::Create(f.data.get(), f.meta.get(), options);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());

  auto client = Client::Connect(options.socket_path);
  ASSERT_TRUE(client.ok());
  auto stmt = (*client)->Prepare("SELECT v FROM t WHERE k = ?");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_TRUE((*client)->BindValue(*stmt, 1, Value::Integer(37)).ok());

  // Re-point the same prepared plan at each snapshot via AS OF binding;
  // every execution must match the equivalent one-shot query.
  for (retro::SnapshotId s = 1; s <= f.last_snap; ++s) {
    ASSERT_TRUE((*client)->BindAsOf(*stmt, s).ok());
    auto remote = (*client)->ExecPrepared(*stmt);
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    auto local = f.data->Query("SELECT AS OF " + std::to_string(s) +
                               " v FROM t WHERE k = 37");
    ASSERT_TRUE(local.ok());
    EXPECT_EQ(EncodeRows(*remote), EncodeRows(*local)) << "snapshot " << s;
  }
  EXPECT_TRUE((*client)->ClosePrepared(*stmt).ok());
  EXPECT_FALSE((*client)->ExecPrepared(*stmt).ok());

  client->reset();
  WaitForNoSessions(server->get());
  (*server)->Stop();
}

TEST(ServerTest, IdleSessionIsReaped) {
  HistoryFixture f = MakeHistory(2);
  ServerOptions options;
  options.socket_path = UniqueSocketPath();
  options.idle_timeout_us = 150 * 1000;
  auto server = Server::Create(f.data.get(), f.meta.get(), options);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());

  auto client = Client::Connect(options.socket_path);
  ASSERT_TRUE(client.ok());
  EXPECT_EQ((*server)->active_sessions(), 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  WaitForNoSessions(server->get());
  // The reaped connection surfaces as an I/O error on the next request.
  auto result = (*client)->Sql("SELECT AS OF 1 COUNT(*) FROM t");
  EXPECT_FALSE(result.ok());

  (*server)->Stop();
}

TEST(ServerTest, SessionCapacityIsEnforced) {
  HistoryFixture f = MakeHistory(2);
  ServerOptions options;
  options.socket_path = UniqueSocketPath();
  options.max_sessions = 2;
  auto server = Server::Create(f.data.get(), f.meta.get(), options);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());

  auto c1 = Client::Connect(options.socket_path);
  auto c2 = Client::Connect(options.socket_path);
  ASSERT_TRUE(c1.ok() && c2.ok());
  auto c3 = Client::Connect(options.socket_path);
  ASSERT_FALSE(c3.ok());
  EXPECT_EQ(c3.status().code(), StatusCode::kAborted)
      << c3.status().ToString();

  c1->reset();
  c2->reset();
  WaitForNoSessions(server->get());
  (*server)->Stop();
}

// The concurrency gate: four socket clients, staggered overlapping
// intervals (odd clients descending), concurrent scheduled runs — every
// client's result table byte-identical to a sequential in-process oracle
// computed flag-off on the owning engine, and the store-scoped shared
// cache showing real cross-session sharing.
TEST(ServerConcurrencyTest, FourClientsByteIdenticalToSequentialOracle) {
  constexpr int kClients = 4;
  constexpr int kSpan = 10;
  constexpr int kStagger = 2;
  HistoryFixture f = MakeHistory(16);

  // In-process oracle, sequential, flag-off defaults.
  std::vector<std::vector<std::string>> oracle(kClients);
  for (int i = 0; i < kClients; ++i) {
    std::string qs = QsRange(1 + i * kStagger, i * kStagger + kSpan);
    if (i % 2 == 1) qs += " DESC";
    ASSERT_TRUE(
        f.engine->CollateData(qs, kQq, "Oracle" + std::to_string(i)).ok());
    auto rows = f.meta->Query("SELECT * FROM Oracle" + std::to_string(i));
    ASSERT_TRUE(rows.ok());
    oracle[i] = EncodeRows(*rows);
    ASSERT_FALSE(oracle[i].empty());
  }

  ServerOptions options;
  options.socket_path = UniqueSocketPath();
  options.scheduler.dispatch_threads = kClients;
  auto server = Server::Create(f.data.get(), f.meta.get(), options);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());

  struct ClientRun {
    std::unique_ptr<Client> client;
    std::vector<std::string> rows;
    Status status;
    int64_t shared_hits = 0;
  };
  std::vector<ClientRun> runs(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      ClientRun& r = runs[i];
      auto client = Client::Connect(options.socket_path);
      if (!client.ok()) {
        r.status = client.status();
        return;
      }
      r.client = std::move(*client);
      std::string qs = QsRange(1 + i * kStagger, i * kStagger + kSpan);
      if (i % 2 == 1) qs += " DESC";
      auto run = r.client->StartRun(Mechanism::kCollateData, qs, kQq, "Out");
      if (!run.ok()) {
        r.status = run.status();
        return;
      }
      auto done = r.client->WaitRun(*run);
      if (!done.ok()) {
        r.status = done.status();
        return;
      }
      if (!done->status.ok()) {
        r.status = done->status;
        return;
      }
      r.shared_hits = done->shared_page_hits;
      auto rows = r.client->MetaSql("SELECT * FROM Out");
      if (!rows.ok()) {
        r.status = rows.status();
        return;
      }
      r.rows = EncodeRows(*rows);
    });
  }
  for (std::thread& t : threads) t.join();

  int64_t total_shared_hits = 0;
  for (int i = 0; i < kClients; ++i) {
    ASSERT_TRUE(runs[i].status.ok())
        << "client " << i << ": " << runs[i].status.ToString();
    EXPECT_EQ(runs[i].rows, oracle[i]) << "client " << i;
    total_shared_hits += runs[i].shared_hits;
  }
  // Cross-session sharing actually happened: the staggered intervals
  // overlap heavily, so decoded page versions were served across runs.
  EXPECT_GT(total_shared_hits, 0);
  sql::SharedScanCache::Stats cache = (*server)->scan_cache()->GetStats();
  EXPECT_GT(cache.shared_hits, 0);

  for (ClientRun& r : runs) r.client.reset();
  WaitForNoSessions(server->get());
  (*server)->Stop();
}

}  // namespace
}  // namespace rql::server

// PrefetchScheduler lifecycle, accounting, and failure edges: jobs warm
// the snapshot cache ahead of demand reads, background I/O errors surface
// through Collect with the same Status the synchronous path returns,
// Cancel discards them, truncation abandons stale plans, and the
// Schedule/Cancel/Collect/Shutdown surface stays safe under concurrent
// hammering (the TSan `concurrency` suite runs this file).

#include "retro/prefetch_scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "rql/rql.h"
#include "sql/database.h"
#include "storage/fault_env.h"

namespace rql {
namespace {

struct Fixture {
  std::unique_ptr<storage::InMemoryEnv> base_env =
      std::make_unique<storage::InMemoryEnv>();
  std::unique_ptr<storage::FaultInjectionEnv> env =
      std::make_unique<storage::FaultInjectionEnv>(base_env.get());
  std::unique_ptr<sql::Database> data;
  std::unique_ptr<sql::Database> meta;
  std::unique_ptr<RqlEngine> engine;
  std::vector<retro::SnapshotId> snaps;
};

/// A history where every `live` page changes in every snapshot: each
/// declared snapshot's SPT maps the full table to archived pre-states, so
/// a cold prefetch of any non-latest snapshot has real pages to fetch.
Fixture MakeHistory(int snapshots, int items) {
  Fixture f;
  auto data = sql::Database::Open(f.env.get(), "data");
  auto meta = sql::Database::Open(f.env.get(), "meta");
  EXPECT_TRUE(data.ok() && meta.ok());
  f.data = std::move(*data);
  f.meta = std::move(*meta);
  f.engine = std::make_unique<RqlEngine>(f.data.get(), f.meta.get());
  EXPECT_TRUE(f.engine->EnsureSnapIds().ok());
  EXPECT_TRUE(
      f.data->Exec("CREATE TABLE live (item INTEGER, score INTEGER)").ok());
  for (int s = 0; s < snapshots; ++s) {
    EXPECT_TRUE(f.data->Exec("BEGIN").ok());
    if (s == 0) {
      for (int i = 0; i < items; ++i) {
        EXPECT_TRUE(f.data
                        ->Exec("INSERT INTO live VALUES (" +
                               std::to_string(i) + ", " + std::to_string(i) +
                               ")")
                        .ok());
      }
    } else {
      EXPECT_TRUE(f.data->Exec("UPDATE live SET score = score + 1").ok());
    }
    auto snap = f.engine->CommitWithSnapshot("t" + std::to_string(s));
    EXPECT_TRUE(snap.ok()) << snap.status().ToString();
    f.snaps.push_back(*snap);
  }
  return f;
}

std::string AsOfCount(retro::SnapshotId snap) {
  return "SELECT AS OF " + std::to_string(snap) + " COUNT(*) FROM live";
}

TEST(PrefetchSchedulerTest, CollectedJobWarmsCacheAndDemandReadsHit) {
  Fixture f = MakeHistory(6, 400);
  retro::SnapshotStore* store = f.data->store();
  store->ClearSnapshotCache();

  retro::PrefetchScheduler sched(store, {});
  retro::SnapshotId target = f.snaps[1];
  sched.Schedule(target);
  // The engine would be executing the previous iteration here; Drain
  // substitutes for that overlap window so the job finishes rather than
  // racing Collect's demand-priority cancellation.
  sched.Drain(target);
  retro::PrefetchScheduler::JobReport rep = sched.Collect(target);
  EXPECT_TRUE(rep.scheduled);
  ASSERT_TRUE(rep.error.ok()) << rep.error.ToString();
  EXPECT_GT(rep.issued, 0);
  EXPECT_EQ(rep.cancelled, 0);
  EXPECT_GE(rep.overlap_us, 0);
  // A second Collect of the same snapshot finds no job.
  EXPECT_FALSE(sched.Collect(target).scheduled);

  // The demand read consumes what the job loaded: every page it fetched
  // ahead is served from the cache and credited back as a hit.
  auto rows = f.data->Query(AsOfCount(target));
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  int64_t hits = sched.TakeHits();
  EXPECT_GT(hits, 0);
  EXPECT_LE(hits, rep.issued);

  sched.Shutdown();
  int64_t wasted = sched.TakeWasted();
  EXPECT_GE(wasted, 0);
  EXPECT_LE(hits + wasted, rep.issued);
}

TEST(PrefetchSchedulerTest, BackgroundErrorMatchesSyncStatusAndCancelDrops) {
  Fixture f = MakeHistory(6, 400);
  retro::SnapshotStore* store = f.data->store();
  retro::SnapshotId target = f.snaps[1];

  storage::FaultSpec spec;
  spec.op = storage::FaultOp::kRead;
  spec.kind = storage::FaultKind::kIoError;
  spec.glob = "*.pagelog";
  spec.sticky = true;

  // The only archive reads below are the scheduler's, so the fault fires
  // on a worker thread deterministically. Collect must hand the parked
  // Status to the consuming iteration.
  store->ClearSnapshotCache();
  retro::PrefetchScheduler sched(store, {});
  f.env->Arm(spec);
  sched.Schedule(target);
  sched.Drain(target);
  retro::PrefetchScheduler::JobReport rep = sched.Collect(target);
  EXPECT_TRUE(rep.scheduled);
  ASSERT_FALSE(rep.error.ok());
  EXPECT_EQ(rep.issued, 0);

  // The synchronous path fails with the same Status code.
  store->ClearSnapshotCache();
  auto sync = f.data->Query(AsOfCount(target));
  ASSERT_FALSE(sync.ok());
  EXPECT_EQ(rep.error.code(), sync.status().code())
      << rep.error.ToString() << " vs " << sync.status().ToString();

  // Cancel discards a parked error: the consuming iteration replayed, so
  // the synchronous path would not have issued these reads either.
  sched.Schedule(f.snaps[2]);
  sched.Drain(f.snaps[2]);
  retro::PrefetchScheduler::JobReport cancelled = sched.Cancel(f.snaps[2]);
  EXPECT_TRUE(cancelled.scheduled);
  EXPECT_TRUE(cancelled.error.ok()) << cancelled.error.ToString();
  f.env->DisarmAll();
}

TEST(PrefetchSchedulerTest, UndeclaredAndTruncatedSnapshotsPlanNothing) {
  Fixture f = MakeHistory(8, 400);
  retro::SnapshotStore* store = f.data->store();

  store->ClearSnapshotCache();
  retro::PrefetchScheduler sched(store, {});
  // Planning failures are silent: the foreground OpenSnapshot re-derives
  // and surfaces the same error, so the job just fetches nothing.
  retro::SnapshotId bogus = f.snaps.back() + 100;
  sched.Schedule(bogus);
  sched.Drain(bogus);
  retro::PrefetchScheduler::JobReport rep = sched.Collect(bogus);
  EXPECT_TRUE(rep.scheduled);
  EXPECT_TRUE(rep.error.ok()) << rep.error.ToString();
  EXPECT_EQ(rep.issued, 0);

  // Compaction drops snaps[0..2]; a prefetch of a dropped snapshot plans
  // nothing, a kept one still issues.
  ASSERT_TRUE(store->TruncateHistory(f.snaps[3]).ok());
  store->ClearSnapshotCache();
  sched.Schedule(f.snaps[1]);
  sched.Drain(f.snaps[1]);
  rep = sched.Collect(f.snaps[1]);
  EXPECT_TRUE(rep.scheduled);
  EXPECT_TRUE(rep.error.ok()) << rep.error.ToString();
  EXPECT_EQ(rep.issued, 0);

  sched.Schedule(f.snaps[4]);
  sched.Drain(f.snaps[4]);
  rep = sched.Collect(f.snaps[4]);
  ASSERT_TRUE(rep.error.ok()) << rep.error.ToString();
  EXPECT_GT(rep.issued, 0);
}

TEST(PrefetchSchedulerTest, OverlappingSchedulersKeepTrackerRegistered) {
  // Engines can overlap on one store; the older scheduler's Shutdown must
  // not deregister the newer one's consumption tracker.
  Fixture f = MakeHistory(6, 400);
  retro::SnapshotStore* store = f.data->store();
  store->ClearSnapshotCache();

  auto a = std::make_unique<retro::PrefetchScheduler>(
      store, retro::PrefetchScheduler::Options{});
  auto b = std::make_unique<retro::PrefetchScheduler>(
      store, retro::PrefetchScheduler::Options{});
  a->Shutdown();

  retro::SnapshotId target = f.snaps[1];
  b->Schedule(target);
  b->Drain(target);
  retro::PrefetchScheduler::JobReport rep = b->Collect(target);
  ASSERT_TRUE(rep.error.ok()) << rep.error.ToString();
  EXPECT_GT(rep.issued, 0);
  auto rows = f.data->Query(AsOfCount(target));
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_GT(b->TakeHits(), 0);
  b.reset();
  a.reset();
}

TEST(PrefetchSchedulerTest, ConcurrentScheduleCancelCollectShutdownRace) {
  Fixture f = MakeHistory(12, 400);
  retro::SnapshotStore* store = f.data->store();
  const size_t n = f.snaps.size();

  for (int round = 0; round < 4; ++round) {
    store->ClearSnapshotCache();
    retro::PrefetchScheduler::Options opts;
    opts.workers = 2;
    opts.budget_pages = 8;
    retro::PrefetchScheduler sched(store, opts);

    std::thread producer([&] {
      for (int i = 0; i < 200; ++i) sched.Schedule(f.snaps[i % n]);
    });
    std::thread canceller([&] {
      for (int i = 0; i < 200; ++i) sched.Cancel(f.snaps[(i * 7) % n]);
    });
    std::thread collector([&] {
      for (int i = 0; i < 200; ++i) {
        retro::PrefetchScheduler::JobReport rep =
            sched.Collect(f.snaps[(i * 3) % n]);
        if (rep.scheduled) {
          EXPECT_TRUE(rep.error.ok()) << rep.error.ToString();
        }
      }
    });
    std::thread reader([&] {
      for (int i = 0; i < 10; ++i) {
        auto rows = f.data->Query(AsOfCount(f.snaps[i % n]));
        EXPECT_TRUE(rows.ok()) << rows.status().ToString();
      }
    });
    // Odd rounds tear down while the other threads are still calling in:
    // every post-shutdown Schedule is a no-op, every Finish is released.
    if (round % 2 == 1) sched.Shutdown();
    producer.join();
    canceller.join();
    collector.join();
    reader.join();
    sched.Shutdown();
    EXPECT_GE(sched.TakeHits(), 0);
    EXPECT_GE(sched.TakeWasted(), 0);
  }
}

// Engine-level: the same fault schedules the synchronous configurations
// absorb (or fail on) behave identically when the reads race ahead on the
// prefetch pipeline.

TEST(RqlPrefetchFaultTest, TransientFaultsWithRetriesAreTransparent) {
  Fixture f = MakeHistory(10, 120);
  const std::string qs = "SELECT snap_id FROM SnapIds";
  const std::string qq =
      "SELECT item, score, current_snapshot() AS sid FROM live";

  auto dump = [&](const std::string& table) {
    auto rows = f.meta->Query("SELECT * FROM " + table);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    std::vector<std::string> out;
    for (const sql::Row& row : rows->rows) out.push_back(sql::EncodeRow(row));
    return out;
  };

  f.data->store()->ClearSnapshotCache();
  ASSERT_TRUE(f.engine->CollateData(qs, qq, "Baseline").ok());
  std::vector<std::string> baseline = dump("Baseline");

  // One-shot read faults land on whichever thread — background worker or
  // demand reader — issues the Nth archive read; both retry within the
  // same budget, so the run is fault-transparent either way.
  for (uint64_t after : {1u, 4u, 9u, 15u}) {
    storage::FaultSpec spec;
    spec.op = storage::FaultOp::kRead;
    spec.kind = storage::FaultKind::kIoError;
    spec.glob = "*.pagelog";
    spec.after = after;
    f.env->Arm(spec);
  }
  f.engine->mutable_options()->async_prefetch = true;
  f.engine->mutable_options()->archive_read_retries = 2;
  f.data->store()->ClearSnapshotCache();
  Status s = f.engine->CollateData(qs, qq, "Prefetched");
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(dump("Prefetched"), baseline);
  EXPECT_GT(f.env->stats().faults_fired, 0u);
  f.env->DisarmAll();
}

TEST(RqlPrefetchFaultTest, PersistentFaultSurfacesSameStatusAsSyncPath) {
  Fixture f = MakeHistory(8, 120);
  const std::string qs = "SELECT snap_id FROM SnapIds";
  const std::string qq =
      "SELECT item, score, current_snapshot() AS sid FROM live";

  storage::FaultSpec sticky;
  sticky.op = storage::FaultOp::kRead;
  sticky.kind = storage::FaultKind::kIoError;
  sticky.glob = "*.pagelog";
  sticky.sticky = true;

  f.env->Arm(sticky);
  f.data->store()->ClearSnapshotCache();
  Status sync = f.engine->CollateData(qs, qq, "Sync");
  ASSERT_FALSE(sync.ok());
  f.env->DisarmAll();

  // The prefetch pipeline hits the same dead archive; the parked error is
  // surfaced by the consuming iteration with the same Status code, the run
  // fails, and no partial result table leaks.
  f.engine->mutable_options()->async_prefetch = true;
  f.env->Arm(sticky);
  f.data->store()->ClearSnapshotCache();
  Status prefetched = f.engine->CollateData(qs, qq, "Prefetched");
  ASSERT_FALSE(prefetched.ok());
  EXPECT_EQ(prefetched.code(), sync.code())
      << prefetched.ToString() << " vs " << sync.ToString();
  f.env->DisarmAll();
  EXPECT_EQ(f.meta->catalog()->data().FindTable("Sync"), nullptr);
  EXPECT_EQ(f.meta->catalog()->data().FindTable("Prefetched"), nullptr);
}

}  // namespace
}  // namespace rql

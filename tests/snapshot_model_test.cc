// Model-checking test for the Retro snapshot store: a long random sequence
// of page writes, allocations, frees, transactions (with rollbacks) and
// snapshot declarations is mirrored into an in-memory reference model;
// every declared snapshot's as-of state must match the model exactly, at
// every point of the run and after reopen.

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "retro/snapshot_store.h"

namespace rql::retro {
namespace {

using storage::Page;
using storage::PageId;

Page TaggedPage(uint64_t tag) {
  Page p;
  p.Zero();
  p.WriteU64(0, tag);
  p.WriteU64(100, tag ^ 0xABCDEF);
  return p;
}

class SnapshotModelTest : public ::testing::TestWithParam<int> {};

TEST_P(SnapshotModelTest, RandomHistoryMatchesModel) {
  storage::InMemoryEnv env;
  auto opened = SnapshotStore::Open(&env, "model");
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<SnapshotStore> store = std::move(*opened);

  Random rng(GetParam() * 7919 + 3);
  uint64_t next_tag = 1;

  std::map<PageId, uint64_t> live;                   // current page tags
  std::map<SnapshotId, std::map<PageId, uint64_t>> snapshots;
  std::vector<PageId> pages;

  auto verify_all = [&]() {
    for (const auto& [snap, state] : snapshots) {
      auto view = store->OpenSnapshot(snap);
      ASSERT_TRUE(view.ok()) << view.status().ToString();
      for (const auto& [id, tag] : state) {
        Page page;
        Status s = (*view)->ReadPage(id, &page);
        ASSERT_TRUE(s.ok()) << "snap " << snap << " page " << id << ": "
                            << s.ToString();
        EXPECT_EQ(page.ReadU64(0), tag)
            << "snap " << snap << " page " << id;
        EXPECT_EQ(page.ReadU64(100), tag ^ 0xABCDEF);
      }
    }
  };

  const int kRounds = 250;
  for (int round = 0; round < kRounds; ++round) {
    double action = rng.NextDouble();
    if (action < 0.25 || pages.empty()) {
      // Allocate and write a fresh page.
      auto id = store->AllocatePage();
      ASSERT_TRUE(id.ok());
      uint64_t tag = next_tag++;
      ASSERT_TRUE(store->WritePage(*id, TaggedPage(tag)).ok());
      pages.push_back(*id);
      live[*id] = tag;
    } else if (action < 0.55) {
      // Overwrite a random live page.
      PageId id = pages[rng.Uniform(pages.size())];
      if (!live.count(id)) continue;
      uint64_t tag = next_tag++;
      ASSERT_TRUE(store->WritePage(id, TaggedPage(tag)).ok());
      live[id] = tag;
    } else if (action < 0.65) {
      // Free a live page.
      PageId id = pages[rng.Uniform(pages.size())];
      if (!live.count(id)) continue;
      ASSERT_TRUE(store->FreePage(id).ok());
      live.erase(id);
    } else if (action < 0.80) {
      // A transaction that may roll back.
      ASSERT_TRUE(store->Begin().ok());
      std::map<PageId, uint64_t> txn_live = live;
      int writes = 1 + static_cast<int>(rng.Uniform(4));
      for (int w = 0; w < writes; ++w) {
        PageId id = pages[rng.Uniform(pages.size())];
        if (!txn_live.count(id)) continue;
        uint64_t tag = next_tag++;
        ASSERT_TRUE(store->WritePage(id, TaggedPage(tag)).ok());
        txn_live[id] = tag;
      }
      if (rng.Bernoulli(0.4)) {
        ASSERT_TRUE(store->Rollback().ok());
      } else {
        bool with_snapshot = rng.Bernoulli(0.3);
        SnapshotId declared = kNoSnapshot;
        ASSERT_TRUE(store->Commit(with_snapshot, &declared).ok());
        live = txn_live;
        if (with_snapshot) snapshots[declared] = live;
      }
    } else if (action < 0.9) {
      // Declare a snapshot of the current state.
      auto snap = store->DeclareSnapshot();
      ASSERT_TRUE(snap.ok());
      snapshots[*snap] = live;
    } else {
      // Periodically verify a random declared snapshot mid-run.
      if (!snapshots.empty()) {
        auto it = snapshots.begin();
        std::advance(it, rng.Uniform(snapshots.size()));
        auto view = store->OpenSnapshot(it->first);
        ASSERT_TRUE(view.ok());
        for (const auto& [id, tag] : it->second) {
          Page page;
          ASSERT_TRUE((*view)->ReadPage(id, &page).ok());
          ASSERT_EQ(page.ReadU64(0), tag)
              << "mid-run snap " << it->first << " page " << id;
        }
      }
    }
  }

  verify_all();

  // Reopen and verify recovery of the whole history.
  store.reset();
  auto reopened = SnapshotStore::Open(&env, "model");
  ASSERT_TRUE(reopened.ok());
  store = std::move(*reopened);
  verify_all();

  // Post-recovery mutations must not corrupt old snapshots.
  for (int round = 0; round < 20; ++round) {
    PageId id = pages[rng.Uniform(pages.size())];
    if (!live.count(id)) continue;
    uint64_t tag = next_tag++;
    ASSERT_TRUE(store->WritePage(id, TaggedPage(tag)).ok());
    live[id] = tag;
  }
  auto snap = store->DeclareSnapshot();
  ASSERT_TRUE(snap.ok());
  snapshots[*snap] = live;
  verify_all();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotModelTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace rql::retro

// Regression guards for the performance *shapes* the paper's evaluation
// establishes (EXPERIMENTS.md). These run the real TPC-H workload at tiny
// scale and assert the deterministic page-count relationships behind each
// figure — not wall-clock times, which would flake.

#include <gtest/gtest.h>

#include "tpch/workload.h"

namespace rql {
namespace {

class ShapeInvariantsTest : public ::testing::Test {
 protected:
  static tpch::History* history() {
    static tpch::History* h = [] {
      static storage::InMemoryEnv env;
      tpch::HistoryConfig config;
      config.tpch.scale_factor = 0.002;  // 3000 orders
      config.workload = tpch::WorkloadSpec::UW30();
      config.snapshots = 120;  // > 2 overwrite cycles
      auto built = tpch::BuildHistory(&env, "shape", config);
      EXPECT_TRUE(built.ok()) << built.status().ToString();
      return built.ok() ? built->release() : nullptr;
    }();
    return h;
  }

  static int64_t TotalPagelogPages(const RqlRunStats& stats) {
    int64_t total = 0;
    for (const auto& it : stats.iterations) total += it.pagelog_pages;
    return total;
  }
};

// Figure 6/8: within a run over consecutive old snapshots, the cold first
// iteration fetches far more archive pages than any hot iteration.
TEST_F(ShapeInvariantsTest, ColdIterationDominatesArchiveFetches) {
  RqlEngine* engine = history()->engine();
  ASSERT_TRUE(engine
                  ->AggregateDataInVariable(
                      history()->QsInterval(1, 20),
                      "SELECT COUNT(*) FROM orders WHERE "
                      "o_orderstatus = 'O'",
                      "Result", "avg")
                  .ok());
  const RqlRunStats& stats = engine->last_run_stats();
  ASSERT_EQ(stats.iterations.size(), 20u);
  int64_t cold = stats.iterations[0].pagelog_pages;
  for (size_t i = 1; i < stats.iterations.size(); ++i) {
    EXPECT_LT(stats.iterations[i].pagelog_pages, cold / 3)
        << "iteration " << i;
  }
}

// Figure 6: the all-cold run fetches strictly more archive pages than the
// shared (cached) run over the same snapshot set.
TEST_F(ShapeInvariantsTest, SharingReducesTotalFetches) {
  RqlEngine* engine = history()->engine();
  std::string qs = history()->QsInterval(1, 15);
  const char* qq = "SELECT COUNT(*) FROM orders";

  ASSERT_TRUE(
      engine->AggregateDataInVariable(qs, qq, "Result", "avg").ok());
  int64_t shared = TotalPagelogPages(engine->last_run_stats());

  engine->mutable_options()->cold_cache_per_iteration = true;
  ASSERT_TRUE(
      engine->AggregateDataInVariable(qs, qq, "Result", "avg").ok());
  int64_t all_cold = TotalPagelogPages(engine->last_run_stats());
  engine->mutable_options()->cold_cache_per_iteration = false;

  EXPECT_LT(shared, all_cold / 2);
}

// Figure 7/8: iterating a recent snapshot reads most pages from the
// current database, an old snapshot from the archive.
TEST_F(ShapeInvariantsTest, RecentSnapshotsShareWithCurrentState) {
  RqlEngine* engine = history()->engine();
  retro::SnapshotId slast = history()->last_snapshot();
  const char* qq = "SELECT COUNT(*) FROM orders";

  ASSERT_TRUE(engine
                  ->AggregateDataInVariable(history()->QsInterval(1, 1), qq,
                                            "Result", "avg")
                  .ok());
  const RqlIterationStats old_iter =
      engine->last_run_stats().iterations[0];

  ASSERT_TRUE(engine
                  ->AggregateDataInVariable(
                      history()->QsInterval(slast, 1), qq, "Result", "avg")
                  .ok());
  const RqlIterationStats recent_iter =
      engine->last_run_stats().iterations[0];

  EXPECT_GT(old_iter.pagelog_pages, 10 * recent_iter.pagelog_pages);
  EXPECT_GT(recent_iter.db_pages, old_iter.db_pages);
}

// Table 1 / Section 4: the non-shared page set saturates after one
// overwrite cycle (UW30: 50 snapshots).
TEST_F(ShapeInvariantsTest, OverwriteCycleSaturation) {
  retro::SnapshotStore* store = history()->data()->store();
  retro::SnapshotId slast = store->latest_snapshot();
  auto spt_size = [&](int age) {
    auto view = store->OpenSnapshot(slast - static_cast<uint32_t>(age));
    EXPECT_TRUE(view.ok());
    return view.ok() ? (*view)->spt_size() : 0;
  };
  uint64_t at_10 = spt_size(10);
  uint64_t at_cycle = spt_size(50);
  uint64_t at_old = spt_size(100);
  EXPECT_LT(at_10, at_cycle / 2);
  // Beyond one cycle the table stops growing (within churn slack).
  EXPECT_LT(at_old, at_cycle + at_cycle / 10);
  EXPECT_GT(at_old, at_cycle - at_cycle / 10);
}

// Figure 11/§5.3: aggregate result tables are far smaller than collated
// ones and independent of the snapshot-set size.
TEST_F(ShapeInvariantsTest, AggregationBoundsResultFootprint) {
  RqlEngine* engine = history()->engine();
  const char* qq =
      "SELECT o_custkey, COUNT(*) AS cn FROM orders GROUP BY o_custkey";
  ASSERT_TRUE(engine
                  ->CollateData(history()->QsInterval(1, 20), qq, "Collate")
                  .ok());
  ASSERT_TRUE(engine
                  ->AggregateDataInTable(history()->QsInterval(1, 20), qq,
                                         "Agg", "(cn,max)")
                  .ok());
  auto collate = history()->meta()->GetTableStats("Collate");
  auto agg = history()->meta()->GetTableStats("Agg");
  ASSERT_TRUE(collate.ok() && agg.ok());
  EXPECT_GT(collate->rows, 10 * agg->rows);

  // Doubling the snapshot set doubles the collate table but not the
  // aggregate table.
  ASSERT_TRUE(engine
                  ->AggregateDataInTable(history()->QsInterval(1, 40), qq,
                                         "Agg40", "(cn,max)")
                  .ok());
  auto agg40 = history()->meta()->GetTableStats("Agg40");
  ASSERT_TRUE(agg40.ok());
  EXPECT_EQ(agg40->rows, agg->rows);
}

// §5.3: the intervals representation is an order of magnitude smaller
// than collation and grows sublinearly with the update rate.
TEST_F(ShapeInvariantsTest, IntervalsCompactHistory) {
  RqlEngine* engine = history()->engine();
  const char* qq = "SELECT o_orderkey FROM orders";
  std::string qs = history()->QsInterval(10, 30);
  ASSERT_TRUE(engine->CollateData(qs, qq, "Naive").ok());
  ASSERT_TRUE(engine->CollateDataIntoIntervals(qs, qq, "Compact").ok());
  auto naive = history()->meta()->GetTableStats("Naive");
  auto compact = history()->meta()->GetTableStats("Compact");
  ASSERT_TRUE(naive.ok() && compact.ok());
  EXPECT_GT(naive->rows, 5 * compact->rows);
}

}  // namespace
}  // namespace rql

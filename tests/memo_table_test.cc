// MemoTable torture tests: fingerprint canonicalization, read-set digest
// order independence, LRU byte-bound eviction, persistence and recovery
// from corrupt / torn memo logs (FaultInjectionEnv is the substrate),
// first-publish-wins under concurrent publishers, and the engine-level
// staleness guarantees — ingest inside vs. outside a recorded read set,
// and TruncateHistory invalidation.

#include "rql/memo_table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "rql/rql.h"
#include "sql/fingerprint.h"
#include "storage/fault_env.h"

namespace rql {
namespace {

using retro::MemoEntry;
using retro::MemoPageVersion;
using retro::MemoPublishResult;
using retro::MemoTable;
using retro::MemoTableOptions;

uint64_t Fp(const std::string& sql, const std::string& salt) {
  auto fp = sql::QueryFingerprint(sql, salt);
  EXPECT_TRUE(fp.ok()) << sql << ": " << fp.status().ToString();
  return fp.ok() ? *fp : 0;
}

TEST(MemoFingerprintTest, CanonicalizationNormalizesWhitespaceAndCase) {
  const uint64_t base =
      Fp("SELECT item, score FROM live WHERE score > 10", "CollateData");
  EXPECT_EQ(base, Fp("select   item,\n\tscore  from LIVE  where score>10",
                     "CollateData"));
  EXPECT_EQ(base, Fp("Select Item, Score From Live Where (score > 10)",
                     "CollateData"));
}

TEST(MemoFingerprintTest, SemanticDifferencesChangeTheKey) {
  const std::string salt = "CollateData";
  const uint64_t base = Fp("SELECT item, score FROM live WHERE score > 10",
                           salt);
  // Another literal value, another predicate, another column order, and a
  // type-flipped literal must all produce distinct keys.
  EXPECT_NE(base,
            Fp("SELECT item, score FROM live WHERE score > 11", salt));
  EXPECT_NE(base,
            Fp("SELECT item, score FROM live WHERE item > 10", salt));
  EXPECT_NE(base,
            Fp("SELECT score, item FROM live WHERE score > 10", salt));
  EXPECT_NE(Fp("SELECT item FROM live WHERE item = 1", salt),
            Fp("SELECT item FROM live WHERE item = '1'", salt));
}

TEST(MemoFingerprintTest, MechanismSaltSeparatesKeys) {
  const std::string qq = "SELECT item, score FROM live";
  EXPECT_NE(Fp(qq, "CollateData"), Fp(qq, "AggregateDataInTable"));
  EXPECT_NE(Fp(qq, "CollateData"), Fp(qq, "AggregateDataInVariable"));
  EXPECT_NE(Fp(qq, "AggregateDataInTable"),
            Fp(qq, "CollateDataIntoIntervals"));
}

TEST(MemoFingerprintTest, AsOfShapeSeparatesKeys) {
  const std::string salt = "CollateData";
  const uint64_t absent = Fp("SELECT item FROM live", salt);
  const uint64_t lit3 = Fp("SELECT AS OF 3 item FROM live", salt);
  const uint64_t lit4 = Fp("SELECT AS OF 4 item FROM live", salt);
  const uint64_t param = Fp("SELECT AS OF ? item FROM live", salt);
  EXPECT_NE(absent, lit3);
  EXPECT_NE(lit3, lit4);  // a literal AS OF pins the snapshot: value counts
  EXPECT_NE(absent, param);
  EXPECT_NE(lit3, param);
}

TEST(MemoDigestTest, ReadSetDigestIsOrderIndependent) {
  std::vector<MemoPageVersion> a = {{7, 100}, {2, 50}, {9, 1}, {3, 3}};
  std::vector<MemoPageVersion> b = {{3, 3}, {9, 1}, {7, 100}, {2, 50}};
  EXPECT_EQ(MemoTable::ReadSetDigest(a), MemoTable::ReadSetDigest(b));
}

TEST(MemoDigestTest, VersionChangesChangeTheDigest) {
  std::vector<MemoPageVersion> a = {{2, 50}, {7, 100}};
  std::vector<MemoPageVersion> b = {{2, 50}, {7, 101}};
  std::vector<MemoPageVersion> c = {{2, 50}};
  std::vector<MemoPageVersion> d = {{2, 50},
                                    {7, retro::kMemoDbSharedVersion}};
  EXPECT_NE(MemoTable::ReadSetDigest(a), MemoTable::ReadSetDigest(b));
  EXPECT_NE(MemoTable::ReadSetDigest(a), MemoTable::ReadSetDigest(c));
  EXPECT_NE(MemoTable::ReadSetDigest(a), MemoTable::ReadSetDigest(d));
}

// ---------------------------------------------------------------------------
// Unit-level table tests, run through a FaultInjectionEnv so every test
// doubles as a transparency check for the fault layer.

struct MemoEnv {
  storage::InMemoryEnv base;
  storage::FaultInjectionEnv env{&base};
};

std::shared_ptr<const MemoEntry> MakeEntry(uint64_t fp, retro::SnapshotId snap,
                                           uint64_t version_base,
                                           size_t payload_bytes = 64) {
  auto e = std::make_shared<MemoEntry>();
  e->fingerprint = fp;
  e->snapshot = snap;
  e->read_set = {{1, version_base}, {2, version_base + 1}};
  e->columns = {"item", "score"};
  e->rows = {std::string(payload_bytes, 'r'),
             std::string(payload_bytes, 's')};
  return e;
}

std::unique_ptr<MemoTable> MustOpen(storage::Env* env,
                                    const std::string& name,
                                    MemoTableOptions opts = {}) {
  auto table = MemoTable::Open(env, name, opts);
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  return std::move(*table);
}

TEST(MemoTableTest, PublishProbeRoundTripAndPersistence) {
  MemoEnv m;
  auto table = MustOpen(&m.env, "m");
  auto e1 = MakeEntry(10, 1, 100);
  auto e2 = MakeEntry(20, 2, 200);
  auto p1 = table->Publish(e1);
  auto p2 = table->Publish(e2);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_TRUE(p1->inserted);
  EXPECT_GT(p1->bytes_appended, 0u);
  EXPECT_EQ(table->entry_count(), 2u);

  auto hit = table->Probe(10, 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->rows, e1->rows);
  EXPECT_EQ(hit->columns, e1->columns);
  EXPECT_EQ(table->Probe(10, 2), nullptr);  // registered per snapshot
  EXPECT_EQ(table->Probe(99, 1), nullptr);

  // Cross-process persistence: a fresh open recovers both entries.
  table.reset();
  auto reopened = MustOpen(&m.env, "m");
  EXPECT_EQ(reopened->recovered_entries(), 2);
  EXPECT_EQ(reopened->truncated_tail_bytes(), 0u);
  auto again = reopened->Probe(10, 1);
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(again->rows, e1->rows);
  ASSERT_NE(reopened->Probe(20, 2), nullptr);
}

TEST(MemoTableTest, FirstPublishWinsAndAliasesSnapshots) {
  MemoEnv m;
  auto table = MustOpen(&m.env, "m");
  auto first = MakeEntry(10, 1, 100);
  auto dup = MakeEntry(10, 5, 100);  // same key, later snapshot
  auto p1 = table->Publish(first);
  auto p2 = table->Publish(dup);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_TRUE(p1->inserted);
  EXPECT_FALSE(p2->inserted);
  // The duplicate logs only a small alias record, not the rows again.
  EXPECT_LT(p2->bytes_appended, p1->bytes_appended);
  EXPECT_EQ(table->entry_count(), 1u);
  // Both snapshots resolve to the first publisher's entry.
  EXPECT_EQ(table->Probe(10, 1), table->Probe(10, 5));
  ASSERT_NE(table->Probe(10, 1), nullptr);

  // Aliases persist: after reopen both snapshots still resolve.
  table.reset();
  auto reopened = MustOpen(&m.env, "m");
  EXPECT_EQ(reopened->entry_count(), 1u);
  EXPECT_NE(reopened->Probe(10, 1), nullptr);
  EXPECT_NE(reopened->Probe(10, 5), nullptr);
}

TEST(MemoTableTest, LruByteBoundEvictsColdEntries) {
  MemoEnv m;
  auto probe_entry = MakeEntry(1, 1, 10, 256);
  MemoTableOptions opts;
  opts.max_bytes = 4 * MemoTable::EntryBytes(*probe_entry);
  auto table = MustOpen(&m.env, "m", opts);

  int64_t evictions = 0;
  for (uint64_t fp = 1; fp <= 8; ++fp) {
    auto pub = table->Publish(
        MakeEntry(fp, static_cast<retro::SnapshotId>(fp), fp * 10, 256));
    ASSERT_TRUE(pub.ok()) << pub.status().ToString();
    evictions += pub->evictions;
    // Keep fp=2 hot so recency, not insertion order, decides eviction.
    if (fp >= 2) {
      ASSERT_NE(table->Probe(2, 2), nullptr);
    }
  }
  EXPECT_GT(evictions, 0);
  EXPECT_EQ(evictions, table->evictions());
  EXPECT_LE(table->bytes(), opts.max_bytes);
  EXPECT_LT(table->entry_count(), 8u);
  // The hot entry and the newest survive; the coldest was evicted.
  EXPECT_NE(table->Probe(2, 2), nullptr);
  EXPECT_NE(table->Probe(8, 8), nullptr);
  EXPECT_EQ(table->Probe(1, 1), nullptr);
  EXPECT_EQ(table->Probe(3, 3), nullptr);
}

TEST(MemoTableTest, TornTailIsTruncatedOnRecovery) {
  MemoEnv m;
  auto table = MustOpen(&m.env, "m");
  for (uint64_t fp = 1; fp <= 3; ++fp) {
    ASSERT_TRUE(
        table->Publish(MakeEntry(fp, static_cast<retro::SnapshotId>(fp),
                                 fp * 10))
            .ok());
  }
  table.reset();

  // A torn append: 13 garbage bytes, not even a whole record header.
  auto file = m.env.OpenFile("m.memo");
  ASSERT_TRUE(file.ok());
  uint64_t off = 0;
  ASSERT_TRUE((*file)->Append(13, "garbage-tail!", &off).ok());
  uint64_t torn_size = (*file)->Size();
  file->reset();

  auto reopened = MustOpen(&m.env, "m");
  EXPECT_EQ(reopened->recovered_entries(), 3);
  EXPECT_EQ(reopened->truncated_tail_bytes(), 13u);
  EXPECT_EQ(reopened->log_bytes(), torn_size - 13);
  for (uint64_t fp = 1; fp <= 3; ++fp) {
    EXPECT_NE(reopened->Probe(fp, static_cast<retro::SnapshotId>(fp)),
              nullptr);
  }
  // The truncated log must stay appendable: publishing works again and the
  // new entry survives another reopen.
  ASSERT_TRUE(reopened->Publish(MakeEntry(4, 4, 40)).ok());
  reopened.reset();
  auto third = MustOpen(&m.env, "m");
  EXPECT_EQ(third->recovered_entries(), 4);
  EXPECT_EQ(third->truncated_tail_bytes(), 0u);
}

TEST(MemoTableTest, ChecksumMismatchTruncatesFromCorruption) {
  MemoEnv m;
  auto table = MustOpen(&m.env, "m");
  uint64_t third_record_off = 0;
  for (uint64_t fp = 1; fp <= 3; ++fp) {
    if (fp == 3) third_record_off = table->log_bytes();
    ASSERT_TRUE(
        table->Publish(MakeEntry(fp, static_cast<retro::SnapshotId>(fp),
                                 fp * 10))
            .ok());
  }
  table.reset();

  // Flip one payload byte of the third record: its checksum mismatches,
  // so recovery must cut the log back to the end of record two.
  auto file = m.env.OpenFile("m.memo");
  ASSERT_TRUE(file.ok());
  uint64_t total = (*file)->Size();
  uint64_t corrupt_at = third_record_off + 30;
  ASSERT_LT(corrupt_at, total);
  char byte = 0;
  ASSERT_TRUE((*file)->Read(corrupt_at, 1, &byte).ok());
  byte = static_cast<char>(byte ^ 0x5A);
  ASSERT_TRUE((*file)->Write(corrupt_at, 1, &byte).ok());
  file->reset();

  auto reopened = MustOpen(&m.env, "m");
  EXPECT_EQ(reopened->recovered_entries(), 2);
  EXPECT_EQ(reopened->truncated_tail_bytes(), total - third_record_off);
  EXPECT_EQ(reopened->log_bytes(), third_record_off);
  EXPECT_NE(reopened->Probe(1, 1), nullptr);
  EXPECT_NE(reopened->Probe(2, 2), nullptr);
  EXPECT_EQ(reopened->Probe(3, 3), nullptr);
}

TEST(MemoTableTest, TornAppendFaultLosesOnlyThatRecord) {
  MemoEnv m;
  auto table = MustOpen(&m.env, "m");
  ASSERT_TRUE(table->Publish(MakeEntry(1, 1, 10)).ok());
  ASSERT_TRUE(table->Publish(MakeEntry(2, 2, 20)).ok());

  storage::FaultSpec spec;
  spec.op = storage::FaultOp::kAppend;
  spec.kind = storage::FaultKind::kTornWrite;
  spec.glob = "*.memo";
  m.env.Arm(spec);
  auto torn = table->Publish(MakeEntry(3, 3, 30));
  EXPECT_FALSE(torn.ok());
  EXPECT_EQ(m.env.stats().faults_fired, 1u);
  table.reset();

  // Recovery sees at most a partial third record and truncates it; the
  // two published entries replay intact.
  auto reopened = MustOpen(&m.env, "m");
  EXPECT_EQ(reopened->recovered_entries(), 2);
  EXPECT_NE(reopened->Probe(1, 1), nullptr);
  EXPECT_NE(reopened->Probe(2, 2), nullptr);
  EXPECT_EQ(reopened->Probe(3, 3), nullptr);
}

TEST(MemoTableTest, CrashAtPublishSyncRecoversPrefix) {
  MemoEnv m;
  auto table = MustOpen(&m.env, "m");
  ASSERT_TRUE(table->Publish(MakeEntry(1, 1, 10)).ok());

  storage::FaultSpec spec;
  spec.op = storage::FaultOp::kSync;
  spec.kind = storage::FaultKind::kCrash;
  spec.glob = "*.memo";
  m.env.Arm(spec);
  EXPECT_FALSE(table->Publish(MakeEntry(2, 2, 20)).ok());
  EXPECT_TRUE(m.env.crashed());
  table.reset();

  // Reboot: un-synced bytes are gone; the synced prefix replays.
  ASSERT_TRUE(m.env.RecoverToSyncedState().ok());
  auto reopened = MustOpen(&m.env, "m");
  EXPECT_EQ(reopened->recovered_entries(), 1);
  EXPECT_NE(reopened->Probe(1, 1), nullptr);
  EXPECT_EQ(reopened->Probe(2, 2), nullptr);
}

TEST(MemoTableTest, InvalidateBelowDropsRegistrationsPersistently) {
  MemoEnv m;
  auto table = MustOpen(&m.env, "m");
  for (uint64_t fp = 1; fp <= 4; ++fp) {
    ASSERT_TRUE(
        table->Publish(MakeEntry(fp, static_cast<retro::SnapshotId>(fp),
                                 fp * 10))
            .ok());
  }
  ASSERT_TRUE(table->InvalidateBelow(3).ok());
  EXPECT_EQ(table->Probe(1, 1), nullptr);
  EXPECT_EQ(table->Probe(2, 2), nullptr);
  EXPECT_NE(table->Probe(3, 3), nullptr);
  EXPECT_NE(table->Probe(4, 4), nullptr);
  EXPECT_EQ(table->entry_count(), 2u);

  // The invalidation is a logged record: recovery replays it.
  table.reset();
  auto reopened = MustOpen(&m.env, "m");
  EXPECT_EQ(reopened->Probe(1, 1), nullptr);
  EXPECT_EQ(reopened->Probe(2, 2), nullptr);
  EXPECT_NE(reopened->Probe(3, 3), nullptr);
  EXPECT_NE(reopened->Probe(4, 4), nullptr);
}

TEST(MemoTableTest, ConcurrentPublishersAgreeOnFirstWin) {
  MemoEnv m;
  auto table = MustOpen(&m.env, "m");
  constexpr int kThreads = 8;
  std::atomic<int> inserted{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // All threads publish the same key (fingerprint 7, same read set)
      // under distinct snapshots, interleaved with probes.
      auto pub = table->Publish(
          MakeEntry(7, static_cast<retro::SnapshotId>(t + 1), 70));
      if (!pub.ok()) {
        ++failures;
        return;
      }
      if (pub->inserted) ++inserted;
      auto hit = table->Probe(7, static_cast<retro::SnapshotId>(t + 1));
      if (hit == nullptr || hit->rows.size() != 2) ++failures;
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(inserted.load(), 1);  // first publish wins, everyone else aliases
  EXPECT_EQ(table->entry_count(), 1u);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_NE(table->Probe(7, static_cast<retro::SnapshotId>(t + 1)),
              nullptr);
  }
}

// ---------------------------------------------------------------------------
// Engine-level staleness: ingest inside vs. outside a recorded read set,
// and TruncateHistory invalidation.

constexpr char kQq[] = "SELECT item, score FROM live";
constexpr char kQsAll[] = "SELECT snap_id FROM SnapIds";

struct EngineFixture {
  std::unique_ptr<storage::InMemoryEnv> base =
      std::make_unique<storage::InMemoryEnv>();
  std::unique_ptr<storage::FaultInjectionEnv> env =
      std::make_unique<storage::FaultInjectionEnv>(base.get());
  std::unique_ptr<sql::Database> data;
  std::unique_ptr<sql::Database> meta;
  std::unique_ptr<RqlEngine> engine;
  std::unique_ptr<MemoTable> memo;
  std::vector<retro::SnapshotId> snaps;
};

/// `live` changes during the first `live_changes` snapshots, then goes
/// static while `churn` keeps changing — so the tail snapshots map live's
/// pages to the current database (db-shared tokens) and the early ones to
/// archived versions (offset tokens). Both token kinds get exercised.
EngineFixture MakeEngineFixture(int snapshots, int live_changes) {
  EngineFixture f;
  auto data = sql::Database::Open(f.env.get(), "data");
  auto meta = sql::Database::Open(f.env.get(), "meta");
  EXPECT_TRUE(data.ok() && meta.ok());
  f.data = std::move(*data);
  f.meta = std::move(*meta);
  f.engine = std::make_unique<RqlEngine>(f.data.get(), f.meta.get());
  EXPECT_TRUE(f.engine->EnsureSnapIds().ok());
  EXPECT_TRUE(
      f.data->Exec("CREATE TABLE live (item INTEGER, score INTEGER)").ok());
  EXPECT_TRUE(
      f.data->Exec("CREATE TABLE churn (k INTEGER, v INTEGER)").ok());
  f.memo = MustOpen(f.env.get(), "qmemo");
  for (int s = 0; s < snapshots; ++s) {
    EXPECT_TRUE(f.data->Exec("BEGIN").ok());
    EXPECT_TRUE(f.data
                    ->Exec("INSERT INTO churn VALUES (" + std::to_string(s) +
                           ", " + std::to_string(s * 7) + ")")
                    .ok());
    if (s == 0) {
      for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(f.data
                        ->Exec("INSERT INTO live VALUES (" +
                               std::to_string(i) + ", " +
                               std::to_string(i * 3) + ")")
                        .ok());
      }
    } else if (s < live_changes) {
      EXPECT_TRUE(f.data
                      ->Exec("UPDATE live SET score = score + 1 "
                             "WHERE item = " + std::to_string(s % 10))
                      .ok());
    }
    auto snap = f.engine->CommitWithSnapshot("t" + std::to_string(s));
    EXPECT_TRUE(snap.ok()) << snap.status().ToString();
    f.snaps.push_back(*snap);
  }
  return f;
}

std::vector<std::string> Dump(EngineFixture* f, const std::string& table) {
  auto rows = f->meta->Query("SELECT * FROM " + table);
  EXPECT_TRUE(rows.ok()) << table << ": " << rows.status().ToString();
  std::vector<std::string> out;
  if (rows.ok()) {
    for (const sql::Row& row : rows->rows) out.push_back(sql::EncodeRow(row));
  }
  return out;
}

Status RunMemoized(EngineFixture* f, const std::string& qs,
                   const std::string& table) {
  RqlOptions opts;
  opts.memoize_iterations = true;
  opts.memo = f->memo.get();
  *f->engine->mutable_options() = opts;
  return f->engine->CollateData(qs, kQq, table);
}

Status RunPlain(EngineFixture* f, const std::string& qs,
                const std::string& table) {
  *f->engine->mutable_options() = RqlOptions{};
  return f->engine->CollateData(qs, kQq, table);
}

int64_t SumHits(const RqlRunStats& stats) {
  int64_t hits = 0;
  for (const RqlIterationStats& it : stats.iterations) hits += it.memo_hits;
  return hits;
}

int64_t SumMisses(const RqlRunStats& stats) {
  int64_t misses = 0;
  for (const RqlIterationStats& it : stats.iterations) {
    misses += it.memo_misses;
  }
  return misses;
}

TEST(MemoStalenessTest, WarmRunReplaysEveryIteration) {
  EngineFixture f = MakeEngineFixture(10, 5);
  ASSERT_TRUE(RunPlain(&f, kQsAll, "Base").ok());
  std::vector<std::string> baseline = Dump(&f, "Base");
  // Flags-off runs must not touch the memo counters at all.
  EXPECT_EQ(SumHits(f.engine->last_run_stats()), 0);
  EXPECT_EQ(SumMisses(f.engine->last_run_stats()), 0);

  ASSERT_TRUE(RunMemoized(&f, kQsAll, "Cold").ok());
  EXPECT_EQ(Dump(&f, "Cold"), baseline);
  EXPECT_EQ(SumHits(f.engine->last_run_stats()), 0);
  EXPECT_EQ(SumMisses(f.engine->last_run_stats()), 10);

  ASSERT_TRUE(RunMemoized(&f, kQsAll, "Warm").ok());
  EXPECT_EQ(Dump(&f, "Warm"), baseline);
  EXPECT_EQ(SumHits(f.engine->last_run_stats()), 10);
  EXPECT_EQ(SumMisses(f.engine->last_run_stats()), 0);
}

TEST(MemoStalenessTest, IngestOutsideReadSetKeepsHits) {
  EngineFixture f = MakeEngineFixture(10, 5);
  ASSERT_TRUE(RunPlain(&f, kQsAll, "Base").ok());
  std::vector<std::string> baseline = Dump(&f, "Base");
  ASSERT_TRUE(RunMemoized(&f, kQsAll, "Cold").ok());

  // New ingest touching only `churn` — pages outside every recorded read
  // set. The old snapshots' live pages resolve exactly as before, so every
  // probe must still validate.
  ASSERT_TRUE(f.data->Exec("BEGIN").ok());
  ASSERT_TRUE(f.data->Exec("INSERT INTO churn VALUES (999, 999)").ok());
  ASSERT_TRUE(f.engine->CommitWithSnapshot("after").ok());

  std::string qs_prefix = std::string(kQsAll) + " WHERE snap_id <= " +
                          std::to_string(f.snaps.back());
  ASSERT_TRUE(RunMemoized(&f, qs_prefix, "Warm").ok());
  EXPECT_EQ(Dump(&f, "Warm"), baseline);
  EXPECT_EQ(SumHits(f.engine->last_run_stats()), 10);
  EXPECT_EQ(SumMisses(f.engine->last_run_stats()), 0);
}

TEST(MemoStalenessTest, IngestInsideReadSetInvalidatesAffectedSnapshots) {
  EngineFixture f = MakeEngineFixture(10, 5);
  ASSERT_TRUE(RunPlain(&f, kQsAll, "Base").ok());
  std::vector<std::string> baseline = Dump(&f, "Base");
  ASSERT_TRUE(RunMemoized(&f, kQsAll, "Cold").ok());

  // Rewrite a live page: the tail snapshots recorded that page as
  // db-shared, and the update forces its capture — their tokens flip, so
  // their probes must miss. Early snapshots recorded archived offsets the
  // update cannot move, so they keep hitting. Either way the replayed AS
  // OF results must stay byte-identical (a stale hit would not).
  ASSERT_TRUE(f.data->Exec("BEGIN").ok());
  ASSERT_TRUE(
      f.data->Exec("UPDATE live SET score = score + 100 WHERE item = 0")
          .ok());
  ASSERT_TRUE(f.engine->CommitWithSnapshot("rewrite").ok());

  std::string qs_prefix = std::string(kQsAll) + " WHERE snap_id <= " +
                          std::to_string(f.snaps.back());
  ASSERT_TRUE(RunMemoized(&f, qs_prefix, "Warm").ok());
  EXPECT_EQ(Dump(&f, "Warm"), baseline);
  const RqlRunStats& stats = f.engine->last_run_stats();
  EXPECT_GT(SumMisses(stats), 0);  // the flipped tokens were caught
  EXPECT_GT(SumHits(stats), 0);    // the archived prefix still replays
  EXPECT_EQ(SumHits(stats) + SumMisses(stats), 10);

  // The misses republished against the new resolutions: a further run
  // replays everything again.
  ASSERT_TRUE(RunMemoized(&f, qs_prefix, "Warm2").ok());
  EXPECT_EQ(Dump(&f, "Warm2"), baseline);
  EXPECT_EQ(SumHits(f.engine->last_run_stats()), 10);
}

TEST(MemoStalenessTest, TruncateHistoryInvalidatesDroppedSnapshots) {
  EngineFixture f = MakeEngineFixture(10, 5);
  ASSERT_TRUE(RunMemoized(&f, kQsAll, "Cold").ok());
  const uint64_t fp = Fp(kQq, "CollateData");
  for (retro::SnapshotId snap : f.snaps) {
    ASSERT_NE(f.memo->Probe(fp, snap), nullptr) << snap;
  }

  // TruncateHistory must purge the dropped snapshots' registrations (the
  // engine's options carry the memo, so the hook fires) — probing them can
  // never validate again.
  retro::SnapshotId keep = f.snaps[5];
  f.engine->mutable_options()->memoize_iterations = true;
  f.engine->mutable_options()->memo = f.memo.get();
  ASSERT_TRUE(f.engine->TruncateHistory(keep).ok());
  for (retro::SnapshotId snap : f.snaps) {
    if (snap < keep) {
      EXPECT_EQ(f.memo->Probe(fp, snap), nullptr) << snap;
    } else {
      EXPECT_NE(f.memo->Probe(fp, snap), nullptr) << snap;
    }
  }

  // Post-truncation runs only see surviving snapshots (SnapIds was purged)
  // and must match a memo-less recomputation byte for byte; hits are only
  // allowed where the recorded versions are still live, which the result
  // comparison verifies implicitly (a stale replay would differ).
  ASSERT_TRUE(RunPlain(&f, kQsAll, "BaseAfter").ok());
  std::vector<std::string> baseline = Dump(&f, "BaseAfter");
  ASSERT_TRUE(RunMemoized(&f, kQsAll, "WarmAfter").ok());
  EXPECT_EQ(Dump(&f, "WarmAfter"), baseline);
  const RqlRunStats& stats = f.engine->last_run_stats();
  EXPECT_EQ(static_cast<int>(stats.iterations.size()), 5);
  EXPECT_EQ(SumHits(stats) + SumMisses(stats), 5);

  // And the invalidation persisted: a reopened memo still refuses the
  // dropped snapshots.
  f.memo.reset();
  f.memo = MustOpen(f.env.get(), "qmemo");
  for (retro::SnapshotId snap : f.snaps) {
    if (snap < keep) {
      EXPECT_EQ(f.memo->Probe(fp, snap), nullptr) << snap;
    }
  }
}

}  // namespace
}  // namespace rql

#include "common/status.h"

#include <gtest/gtest.h>

namespace rql {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(*r, 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::IoError("disk gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(ResultTest, OkStatusIsRejected) {
  Result<int> r(Status::OK());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  RQL_ASSIGN_OR_RETURN(int h, Half(x));
  *out = h;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  Status s = UseHalf(7, &out);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
}

}  // namespace
}  // namespace rql

// Property tests for the RQL mechanisms: against randomized histories,
// every mechanism's output must equal a brute-force recomputation built
// from plain AS OF snapshot queries. This validates the whole stack —
// parser, executor, snapshot store, Maplog/Skippy, COW capture — end to
// end.

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <set>

#include "common/random.h"
#include "rql/rql.h"
#include "sql/shared_scan_cache.h"
#include "storage/fault_env.h"

namespace rql {
namespace {

using sql::Row;
using sql::Value;

// The whole suite runs through a FaultInjectionEnv with nothing armed:
// every property doubles as a transparency check for the fault layer.
struct Fixture {
  std::unique_ptr<storage::InMemoryEnv> base_env =
      std::make_unique<storage::InMemoryEnv>();
  std::unique_ptr<storage::FaultInjectionEnv> env =
      std::make_unique<storage::FaultInjectionEnv>(base_env.get());
  std::unique_ptr<sql::Database> data;
  std::unique_ptr<sql::Database> meta;
  std::unique_ptr<RqlEngine> engine;
  std::vector<retro::SnapshotId> snaps;

  // Reference model: per snapshot, the set of (item, score) rows.
  std::map<retro::SnapshotId, std::map<int64_t, int64_t>> model;
};

/// Builds a random history of inserts/deletes/updates on a simple table,
/// mirrored into an in-memory model, declaring a snapshot per round.
Fixture MakeFixture(uint64_t seed, int snapshots, int items) {
  Fixture f;
  auto data = sql::Database::Open(f.env.get(), "data");
  auto meta = sql::Database::Open(f.env.get(), "meta");
  EXPECT_TRUE(data.ok() && meta.ok());
  f.data = std::move(*data);
  f.meta = std::move(*meta);
  f.engine = std::make_unique<RqlEngine>(f.data.get(), f.meta.get());
  EXPECT_TRUE(f.engine->EnsureSnapIds().ok());
  EXPECT_TRUE(
      f.data->Exec("CREATE TABLE live (item INTEGER, score INTEGER)").ok());

  Random rng(seed);
  std::map<int64_t, int64_t> current;
  for (int s = 0; s < snapshots; ++s) {
    EXPECT_TRUE(f.data->Exec("BEGIN").ok());
    int ops = 1 + static_cast<int>(rng.Uniform(5));
    for (int op = 0; op < ops; ++op) {
      int64_t item = static_cast<int64_t>(rng.Uniform(items));
      switch (rng.Uniform(3)) {
        case 0: {  // upsert
          int64_t score = static_cast<int64_t>(rng.Uniform(100));
          if (current.count(item)) {
            EXPECT_TRUE(f.data
                            ->Exec("UPDATE live SET score = " +
                                   std::to_string(score) +
                                   " WHERE item = " + std::to_string(item))
                            .ok());
          } else {
            EXPECT_TRUE(f.data
                            ->Exec("INSERT INTO live VALUES (" +
                                   std::to_string(item) + ", " +
                                   std::to_string(score) + ")")
                            .ok());
          }
          current[item] = score;
          break;
        }
        case 1:  // delete
          EXPECT_TRUE(f.data
                          ->Exec("DELETE FROM live WHERE item = " +
                                 std::to_string(item))
                          .ok());
          current.erase(item);
          break;
        default: {  // bump score
          EXPECT_TRUE(f.data
                          ->Exec("UPDATE live SET score = score + 1 "
                                 "WHERE item = " + std::to_string(item))
                          .ok());
          if (current.count(item)) ++current[item];
          break;
        }
      }
    }
    auto snap = f.engine->CommitWithSnapshot("t" + std::to_string(s));
    EXPECT_TRUE(snap.ok()) << snap.status().ToString();
    f.snaps.push_back(*snap);
    f.model[*snap] = current;
  }
  return f;
}

/// Like MakeFixture, but the table Qq reads (`live`) changes only every
/// `live_period`-th snapshot while a side table (`churn`) changes every
/// snapshot — the COW high-sharing shape: most consecutive snapshots map
/// identical `live` page versions, so deltas relevant to Qq are empty and
/// page versions are widely shared across the set.
///
/// `live` spans several heap pages (filler rows force the split) with two
/// hot zones on different pages: zone A (items 0..items) changes every
/// `live_period`-th snapshot, zone B (items 50000..) every
/// 2*`live_period`-th. An iteration that executes because zone A changed
/// still reads zone B's unchanged — and archived, since B changes again
/// later — page version, so the decoded-page cache gets hits even when
/// iteration skipping filters the run down to changed snapshots. Post-load
/// mutations are in-place UPDATEs and DELETEs only (records are
/// fixed-width, so UPDATE never relocates): an INSERT would land on the
/// heap tail page and perturb zone B's version chain.
Fixture MakeSparseFixture(uint64_t seed, int snapshots, int items,
                          int live_period) {
  Fixture f;
  auto data = sql::Database::Open(f.env.get(), "data");
  auto meta = sql::Database::Open(f.env.get(), "meta");
  EXPECT_TRUE(data.ok() && meta.ok());
  f.data = std::move(*data);
  f.meta = std::move(*meta);
  f.engine = std::make_unique<RqlEngine>(f.data.get(), f.meta.get());
  EXPECT_TRUE(f.engine->EnsureSnapIds().ok());
  EXPECT_TRUE(
      f.data->Exec("CREATE TABLE live (item INTEGER, score INTEGER)").ok());
  EXPECT_TRUE(
      f.data->Exec("CREATE TABLE churn (k INTEGER, v INTEGER)").ok());

  Random rng(seed);
  std::map<int64_t, int64_t> current;
  for (int s = 0; s < snapshots; ++s) {
    EXPECT_TRUE(f.data->Exec("BEGIN").ok());
    // The side table churns every snapshot, so the history is never
    // trivially static — only the pages Qq reads go untouched.
    EXPECT_TRUE(f.data
                    ->Exec("INSERT INTO churn VALUES (" + std::to_string(s) +
                           ", " + std::to_string(rng.Uniform(1000)) + ")")
                    .ok());
    if (s == 0) {
      // Zone A: item 0 (never deleted, so live is never empty) plus the
      // hot items, all on the first heap page.
      EXPECT_TRUE(f.data->Exec("INSERT INTO live VALUES (0, 5)").ok());
      current[0] = 5;
      for (int i = 1; i <= items; ++i) {
        int64_t score = static_cast<int64_t>(rng.Uniform(100));
        EXPECT_TRUE(f.data
                        ->Exec("INSERT INTO live VALUES (" +
                               std::to_string(i) + ", " +
                               std::to_string(score) + ")")
                        .ok());
        current[i] = score;
      }
      // Filler: ~155 fixed-width rows fit a 4 KiB page, so 320 rows push
      // zone B at least two pages past zone A. Never touched again.
      for (int i = 0; i < 320; ++i) {
        EXPECT_TRUE(f.data
                        ->Exec("INSERT INTO live VALUES (" +
                               std::to_string(1000 + i) + ", 7)")
                        .ok());
        current[1000 + i] = 7;
      }
      for (int i = 0; i < items; ++i) {
        int64_t score = static_cast<int64_t>(rng.Uniform(100));
        EXPECT_TRUE(f.data
                        ->Exec("INSERT INTO live VALUES (" +
                               std::to_string(50000 + i) + ", " +
                               std::to_string(score) + ")")
                        .ok());
        current[50000 + i] = score;
      }
    } else {
      if (s % live_period == 0) {
        // Zone A round. The unconditional item-0 update guarantees the
        // iteration executes, which is what gives zone B's shared page
        // version a reader.
        int64_t score = static_cast<int64_t>(rng.Uniform(100));
        EXPECT_TRUE(f.data
                        ->Exec("UPDATE live SET score = " +
                               std::to_string(score) + " WHERE item = 0")
                        .ok());
        current[0] = score;
        int ops = static_cast<int>(rng.Uniform(3));
        for (int op = 0; op < ops; ++op) {
          int64_t item = 1 + static_cast<int64_t>(rng.Uniform(items));
          if (!current.count(item)) continue;  // deleted items stay gone
          if (rng.Uniform(4) == 0) {
            EXPECT_TRUE(f.data
                            ->Exec("DELETE FROM live WHERE item = " +
                                   std::to_string(item))
                            .ok());
            current.erase(item);
            continue;
          }
          score = static_cast<int64_t>(rng.Uniform(100));
          EXPECT_TRUE(f.data
                          ->Exec("UPDATE live SET score = " +
                                 std::to_string(score) +
                                 " WHERE item = " + std::to_string(item))
                          .ok());
          current[item] = score;
        }
      }
      if (s % (2 * live_period) == 0) {
        // Zone B round: in-place update on its own page.
        int64_t item = 50000 + static_cast<int64_t>(rng.Uniform(items));
        int64_t score = static_cast<int64_t>(rng.Uniform(100));
        EXPECT_TRUE(f.data
                        ->Exec("UPDATE live SET score = " +
                               std::to_string(score) +
                               " WHERE item = " + std::to_string(item))
                        .ok());
        current[item] = score;
      }
    }
    auto snap = f.engine->CommitWithSnapshot("t" + std::to_string(s));
    EXPECT_TRUE(snap.ok()) << snap.status().ToString();
    f.snaps.push_back(*snap);
    f.model[*snap] = current;
  }
  return f;
}

class RqlPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RqlPropertyTest, SnapshotsMatchModel) {
  Fixture f = MakeFixture(GetParam() * 1000 + 17, 20, 12);
  for (retro::SnapshotId snap : f.snaps) {
    auto rows = f.data->Query("SELECT AS OF " + std::to_string(snap) +
                              " item, score FROM live ORDER BY item");
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    const auto& expected = f.model[snap];
    ASSERT_EQ(rows->rows.size(), expected.size()) << "snapshot " << snap;
    size_t i = 0;
    for (const auto& [item, score] : expected) {
      EXPECT_EQ(rows->rows[i][0].integer(), item);
      EXPECT_EQ(rows->rows[i][1].integer(), score);
      ++i;
    }
  }
}

TEST_P(RqlPropertyTest, CollateDataEqualsBruteForce) {
  Fixture f = MakeFixture(GetParam() * 1000 + 31, 16, 10);
  ASSERT_TRUE(f.engine
                  ->CollateData("SELECT snap_id FROM SnapIds",
                                "SELECT item, score, current_snapshot() AS "
                                "sid FROM live",
                                "Result")
                  .ok());
  // Brute force from the model.
  std::multiset<std::tuple<int64_t, int64_t, int64_t>> expected;
  for (retro::SnapshotId snap : f.snaps) {
    for (const auto& [item, score] : f.model[snap]) {
      expected.insert({item, score, snap});
    }
  }
  auto rows = f.meta->Query("SELECT item, score, sid FROM Result");
  ASSERT_TRUE(rows.ok());
  std::multiset<std::tuple<int64_t, int64_t, int64_t>> actual;
  for (const Row& row : rows->rows) {
    actual.insert({row[0].integer(), row[1].integer(), row[2].integer()});
  }
  EXPECT_EQ(actual, expected);
}

TEST_P(RqlPropertyTest, AggregateVariableEqualsBruteForce) {
  Fixture f = MakeFixture(GetParam() * 1000 + 47, 16, 10);
  ASSERT_TRUE(f.engine
                  ->AggregateDataInVariable(
                      "SELECT snap_id FROM SnapIds",
                      "SELECT SUM(score) AS total FROM live", "Result",
                      "max")
                  .ok());
  int64_t expected = INT64_MIN;
  bool any = false;
  for (retro::SnapshotId snap : f.snaps) {
    if (f.model[snap].empty()) continue;  // SUM over empty is NULL: ignored
    int64_t total = 0;
    for (const auto& [item, score] : f.model[snap]) total += score;
    expected = std::max(expected, total);
    any = true;
  }
  auto value = f.meta->QueryScalar("SELECT * FROM Result");
  ASSERT_TRUE(value.ok());
  if (any) {
    EXPECT_EQ(value->integer(), expected);
  } else {
    EXPECT_TRUE(value->is_null());
  }
}

TEST_P(RqlPropertyTest, AggregateTableEqualsBruteForce) {
  Fixture f = MakeFixture(GetParam() * 1000 + 63, 16, 10);
  ASSERT_TRUE(f.engine
                  ->AggregateDataInTable("SELECT snap_id FROM SnapIds",
                                         "SELECT item, score FROM live",
                                         "Result", "(score,max)")
                  .ok());
  // Brute force: per item, max score over all snapshots where it appears.
  std::map<int64_t, int64_t> expected;
  for (retro::SnapshotId snap : f.snaps) {
    for (const auto& [item, score] : f.model[snap]) {
      auto it = expected.find(item);
      if (it == expected.end() || score > it->second) {
        expected[item] = score;
      }
    }
  }
  auto rows = f.meta->Query("SELECT item, score FROM Result ORDER BY item");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), expected.size());
  size_t i = 0;
  for (const auto& [item, score] : expected) {
    EXPECT_EQ(rows->rows[i][0].integer(), item) << "row " << i;
    EXPECT_EQ(rows->rows[i][1].integer(), score) << "row " << i;
    ++i;
  }
}

TEST_P(RqlPropertyTest, IntervalsEqualBruteForce) {
  Fixture f = MakeFixture(GetParam() * 1000 + 91, 16, 8);
  ASSERT_TRUE(f.engine
                  ->CollateDataIntoIntervals("SELECT snap_id FROM SnapIds",
                                             "SELECT item FROM live",
                                             "Result")
                  .ok());
  // Brute force: maximal runs of consecutive snapshots containing item.
  std::multiset<std::tuple<int64_t, int64_t, int64_t>> expected;
  std::set<int64_t> all_items;
  for (const auto& [snap, items] : f.model) {
    for (const auto& [item, score] : items) all_items.insert(item);
  }
  for (int64_t item : all_items) {
    int64_t start = -1;
    int64_t prev = -1;
    for (retro::SnapshotId snap : f.snaps) {
      bool present = f.model[snap].count(item) > 0;
      if (present) {
        if (start < 0) {
          start = snap;
        } else if (static_cast<int64_t>(snap) != prev + 1) {
          expected.insert({item, start, prev});
          start = snap;
        }
        prev = snap;
      } else if (start >= 0) {
        expected.insert({item, start, prev});
        start = -1;
      }
    }
    if (start >= 0) expected.insert({item, start, prev});
  }
  auto rows = f.meta->Query(
      "SELECT item, start_snapshot, end_snapshot FROM Result");
  ASSERT_TRUE(rows.ok());
  std::multiset<std::tuple<int64_t, int64_t, int64_t>> actual;
  for (const Row& row : rows->rows) {
    actual.insert({row[0].integer(), row[1].integer(), row[2].integer()});
  }
  EXPECT_EQ(actual, expected);
}

TEST_P(RqlPropertyTest, SubsetAndSkipQsMatchModel) {
  Fixture f = MakeFixture(GetParam() * 1000 + 113, 20, 10);
  // Qs selecting every third snapshot.
  ASSERT_TRUE(f.engine
                  ->CollateData(
                      "SELECT snap_id FROM SnapIds WHERE snap_id % 3 = 1",
                      "SELECT COUNT(*) AS c, current_snapshot() AS sid "
                      "FROM live",
                      "Result")
                  .ok());
  auto rows = f.meta->Query("SELECT c, sid FROM Result ORDER BY sid");
  ASSERT_TRUE(rows.ok());
  size_t i = 0;
  for (retro::SnapshotId snap : f.snaps) {
    if (snap % 3 != 1) continue;
    ASSERT_LT(i, rows->rows.size());
    EXPECT_EQ(rows->rows[i][0].integer(),
              static_cast<int64_t>(f.model[snap].size()))
        << "snapshot " << snap;
    EXPECT_EQ(rows->rows[i][1].integer(), static_cast<int64_t>(snap));
    ++i;
  }
  EXPECT_EQ(i, rows->rows.size());
}

TEST_P(RqlPropertyTest, AmortizationFlagsPreserveCollateOutput) {
  // The iteration-setup amortization flags (incremental SPT, Qq plan
  // reuse, batched Pagelog reads) are pure optimizations: CollateData must
  // produce byte-identical result tables with any of them enabled, across
  // randomized update/snapshot interleavings.
  Fixture f = MakeFixture(GetParam() * 1000 + 137, 18, 10);
  const std::string qs = "SELECT snap_id FROM SnapIds";
  const std::string qq =
      "SELECT item, score, current_snapshot() AS sid FROM live";

  auto dump = [&](const std::string& table) {
    auto rows = f.meta->Query("SELECT * FROM " + table);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    std::vector<std::string> out;
    for (const Row& row : rows->rows) out.push_back(sql::EncodeRow(row));
    return out;
  };

  f.data->store()->ClearSnapshotCache();
  ASSERT_TRUE(f.engine->CollateData(qs, qq, "Baseline").ok());
  int64_t baseline_parses = f.engine->last_run_stats().qq_parse_count;
  EXPECT_EQ(baseline_parses, static_cast<int64_t>(f.snaps.size()));
  std::vector<std::string> baseline = dump("Baseline");

  struct Config {
    const char* name;
    bool incremental, reuse, batch;
  };
  const Config kConfigs[] = {
      {"IncrementalSpt", true, false, false},
      {"ReusePlan", false, true, false},
      {"BatchReads", false, false, true},
      {"AllOn", true, true, true},
  };
  for (const Config& c : kConfigs) {
    RqlOptions* opts = f.engine->mutable_options();
    opts->incremental_spt = c.incremental;
    opts->reuse_qq_plan = c.reuse;
    opts->batch_pagelog_reads = c.batch;
    f.data->store()->ClearSnapshotCache();
    ASSERT_TRUE(f.engine->CollateData(qs, qq, c.name).ok()) << c.name;
    EXPECT_EQ(dump(c.name), baseline) << c.name;
    const RqlRunStats& stats = f.engine->last_run_stats();
    if (c.reuse) {
      EXPECT_EQ(stats.qq_parse_count, 1) << c.name;
    } else {
      EXPECT_EQ(stats.qq_parse_count, baseline_parses) << c.name;
    }
    if (c.incremental) {
      int64_t delta = 0;
      for (const RqlIterationStats& it : stats.iterations) {
        delta += it.spt_delta_entries;
      }
      EXPECT_GT(delta, 0) << c.name;
    }
  }
}

TEST_P(RqlPropertyTest, TransientPagelogFaultsWithRetriesAreTransparent) {
  // Injected transient read failures on the page archive must be invisible
  // to CollateData when archive reads are retried: the result table is
  // byte-identical to the fault-free run. Without retries the run must
  // fail cleanly, leaving no partial result table behind.
  Fixture f = MakeFixture(GetParam() * 1000 + 151, 16, 10);
  const std::string qs = "SELECT snap_id FROM SnapIds";
  const std::string qq =
      "SELECT item, score, current_snapshot() AS sid FROM live";

  auto dump = [&](const std::string& table) {
    auto rows = f.meta->Query("SELECT * FROM " + table);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    std::vector<std::string> out;
    for (const Row& row : rows->rows) out.push_back(sql::EncodeRow(row));
    return out;
  };

  f.data->store()->ClearSnapshotCache();
  ASSERT_TRUE(f.engine->CollateData(qs, qq, "Baseline").ok());
  std::vector<std::string> baseline = dump("Baseline");

  // One-shot read faults spread across the run; each first retry succeeds.
  for (uint64_t after : {2u, 5u, 9u, 14u}) {
    storage::FaultSpec spec;
    spec.op = storage::FaultOp::kRead;
    spec.kind = storage::FaultKind::kIoError;
    spec.glob = "*.pagelog";
    spec.after = after;
    f.env->Arm(spec);
  }
  f.engine->mutable_options()->archive_read_retries = 2;
  f.data->store()->ClearSnapshotCache();
  Status faulted = f.engine->CollateData(qs, qq, "Faulted");
  ASSERT_TRUE(faulted.ok()) << faulted.ToString();
  EXPECT_EQ(dump("Faulted"), baseline);
  EXPECT_GT(f.env->stats().faults_fired, 0u);
  EXPECT_GE(f.engine->last_run_stats().archive_read_retries, 1);

  // Fail-fast phase: a sticky fault with no retry budget must abort the
  // run without leaking a partial result table.
  f.engine->mutable_options()->archive_read_retries = 0;
  storage::FaultSpec sticky;
  sticky.op = storage::FaultOp::kRead;
  sticky.kind = storage::FaultKind::kIoError;
  sticky.glob = "*.pagelog";
  sticky.sticky = true;
  f.env->Arm(sticky);
  f.data->store()->ClearSnapshotCache();
  Status failed = f.engine->CollateData(qs, qq, "NoRetry");
  EXPECT_FALSE(failed.ok());
  f.env->DisarmAll();
  EXPECT_EQ(f.meta->catalog()->data().FindTable("NoRetry"), nullptr);
}

TEST_P(RqlPropertyTest, PageSharingFlagsPreserveAllMechanismOutputs) {
  // reuse_decoded_pages and skip_unchanged_iterations are pure
  // optimizations: on a sparse-update history every mechanism's result
  // table must be byte-identical with any combination of the flags —
  // alone, together, stacked on the iteration-setup amortization flags,
  // under a per-iteration cold cache, and (for parallelizable mechanisms)
  // under parallel workers. AggregateDataInVariable uses the
  // non-idempotent `sum` fold so a replayed iteration that contributed
  // twice (or not at all) would be caught.
  Fixture f = MakeSparseFixture(GetParam() * 1000 + 173, 24, 8, 4);
  const std::string qs = "SELECT snap_id FROM SnapIds";

  auto dump = [&](const std::string& table) {
    auto rows = f.meta->Query("SELECT * FROM " + table);
    EXPECT_TRUE(rows.ok()) << table << ": " << rows.status().ToString();
    std::vector<std::string> out;
    for (const Row& row : rows->rows) out.push_back(sql::EncodeRow(row));
    return out;
  };

  // Every configuration below also checks the observability layer: the
  // registry delta taken around a run must equal the legacy RqlRunStats
  // counters exactly, whatever flags were active.
  retro::MetricsRegistry registry;
  auto expect_delta_matches = [&](const retro::MetricsRegistry::Snapshot&
                                      delta,
                                  const std::string& label) {
    const RqlRunStats& stats = f.engine->last_run_stats();
    EXPECT_EQ(delta.counter("rql.runs"), 1) << label;
    EXPECT_EQ(delta.counter("rql.iterations"),
              static_cast<int64_t>(stats.iterations.size()))
        << label;
    EXPECT_EQ(delta.counter("rql.iterations_skipped"),
              stats.iterations_skipped)
        << label;
    EXPECT_EQ(delta.counter("rql.shared_page_hits"),
              stats.shared_page_hits)
        << label;
    EXPECT_EQ(delta.counter("rql.coalesced_loads"), stats.coalesced_loads)
        << label;
    EXPECT_EQ(delta.counter("rql.qq_parse_count"), stats.qq_parse_count)
        << label;
    EXPECT_EQ(delta.counter("rql.total_us"), stats.TotalUs()) << label;
    int64_t qq_rows = 0, delta_pages = 0, plan_hits = 0;
    int64_t batches = 0, batch_rows = 0, batch_fallback = 0;
    for (const RqlIterationStats& it : stats.iterations) {
      qq_rows += it.qq_rows;
      delta_pages += it.delta_pages_scanned;
      plan_hits += it.plan_cache_hits;
      batches += it.batches_scanned;
      batch_rows += it.batch_rows;
      batch_fallback += it.batch_fallback_rows;
    }
    EXPECT_EQ(delta.counter("rql.qq_rows"), qq_rows) << label;
    EXPECT_EQ(delta.counter("rql.delta_pages_scanned"), delta_pages)
        << label;
    EXPECT_EQ(delta.counter("rql.plan_cache_hits"), plan_hits) << label;
    EXPECT_EQ(delta.counter("rql.batches_scanned"), batches) << label;
    EXPECT_EQ(delta.counter("rql.batch_rows"), batch_rows) << label;
    EXPECT_EQ(delta.counter("rql.batch_fallback_rows"), batch_fallback)
        << label;
  };

  struct Mech {
    const char* name;
    std::function<Status(const std::string&)> run;
  };
  const std::vector<Mech> mechs = {
      {"collate",
       [&](const std::string& t) {
         return f.engine->CollateData(qs, "SELECT item, score FROM live", t);
       }},
      {"aggvar",
       [&](const std::string& t) {
         return f.engine->AggregateDataInVariable(
             qs, "SELECT COUNT(*) AS c FROM live", t, "sum");
       }},
      {"aggtable",
       [&](const std::string& t) {
         return f.engine->AggregateDataInTable(
             qs, "SELECT item, score FROM live", t, "(score,max)");
       }},
      {"intervals",
       [&](const std::string& t) {
         return f.engine->CollateDataIntoIntervals(
             qs, "SELECT item FROM live", t);
       }},
  };

  struct Config {
    const char* name;
    bool reuse, skip, amort, cold_iter;
    int workers;
  };
  const Config kConfigs[] = {
      {"reuse", true, false, false, false, 1},
      {"skip", false, true, false, false, 1},
      {"both", true, true, false, false, 1},
      {"both_amortized", true, true, true, false, 1},
      {"reuse_cold_iter", true, false, false, true, 1},
      {"both_parallel", true, true, false, false, 4},
  };

  for (const Mech& m : mechs) {
    *f.engine->mutable_options() = RqlOptions{};
    f.engine->mutable_options()->metrics = &registry;
    f.data->store()->ClearSnapshotCache();
    std::string base_table = std::string("base_") + m.name;
    retro::MetricsRegistry::Snapshot before = registry.TakeSnapshot();
    ASSERT_TRUE(m.run(base_table).ok()) << m.name;
    expect_delta_matches(registry.TakeSnapshot().DeltaFrom(before),
                         base_table);
    // Flags-off runs must not engage the new machinery at all.
    EXPECT_EQ(f.engine->last_run_stats().iterations_skipped, 0) << m.name;
    EXPECT_EQ(f.engine->last_run_stats().shared_page_hits, 0) << m.name;
    std::vector<std::string> baseline = dump(base_table);

    for (const Config& c : kConfigs) {
      RqlOptions opts;
      opts.reuse_decoded_pages = c.reuse;
      opts.skip_unchanged_iterations = c.skip;
      opts.incremental_spt = c.amort;
      opts.reuse_qq_plan = c.amort;
      opts.batch_pagelog_reads = c.amort;
      opts.cold_cache_per_iteration = c.cold_iter;
      opts.parallel_workers = c.workers;
      // Options are replaced wholesale above, so the registry has to be
      // re-installed for every configuration.
      opts.metrics = &registry;
      *f.engine->mutable_options() = opts;
      f.data->store()->ClearSnapshotCache();
      std::string table = std::string(m.name) + "_" + c.name;
      before = registry.TakeSnapshot();
      ASSERT_TRUE(m.run(table).ok()) << table;
      expect_delta_matches(registry.TakeSnapshot().DeltaFrom(before),
                           table);
      EXPECT_EQ(dump(table), baseline) << table;
      const RqlRunStats& stats = f.engine->last_run_stats();
      // Live changes every 4th snapshot only: the three quiet iterations
      // of each period must skip, and versions shared across the set must
      // hit the decoded-page cache (unless it is dropped per iteration).
      if (c.reuse && !c.cold_iter) {
        EXPECT_GT(stats.shared_page_hits, 0) << table;
      }
      if (c.skip && !stats.parallel) {
        EXPECT_GT(stats.iterations_skipped, 0) << table;
      }
      if (!stats.parallel) {
        int64_t skipped = 0;
        for (const RqlIterationStats& it : stats.iterations) {
          if (it.skipped) ++skipped;
        }
        EXPECT_EQ(skipped, stats.iterations_skipped) << table;
      }
    }
  }
}

TEST_P(RqlPropertyTest, SkipDisabledWhenQqUsesCurrentSnapshot) {
  // current_snapshot() makes the Qq result vary per snapshot even on
  // identical data: the engine must detect it, never skip, and still
  // produce the baseline output.
  Fixture f = MakeSparseFixture(GetParam() * 1000 + 191, 16, 6, 4);
  const std::string qs = "SELECT snap_id FROM SnapIds";
  const std::string qq =
      "SELECT item, score, current_snapshot() AS sid FROM live";

  auto dump = [&](const std::string& table) {
    auto rows = f.meta->Query("SELECT * FROM " + table);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    std::vector<std::string> out;
    for (const Row& row : rows->rows) out.push_back(sql::EncodeRow(row));
    return out;
  };

  ASSERT_TRUE(f.engine->CollateData(qs, qq, "Baseline").ok());
  std::vector<std::string> baseline = dump("Baseline");

  f.engine->mutable_options()->skip_unchanged_iterations = true;
  f.engine->mutable_options()->reuse_decoded_pages = true;
  f.data->store()->ClearSnapshotCache();
  ASSERT_TRUE(f.engine->CollateData(qs, qq, "Flagged").ok());
  EXPECT_EQ(dump("Flagged"), baseline);
  EXPECT_EQ(f.engine->last_run_stats().iterations_skipped, 0);
}

TEST_P(RqlPropertyTest, MemoizationPreservesAllMechanismOutputs) {
  // memoize_iterations is a pure optimization: for every mechanism, under
  // every flag combination it composes with (decoded-page reuse, iteration
  // skipping, batch execution, parallel workers), both the cold run that
  // fills the persistent memo and the warm run that replays from it must
  // be byte-identical to the flags-off baseline — and the warm run must
  // actually hit. AggregateDataInVariable uses the non-idempotent `sum`
  // fold so a replayed iteration that contributed twice (or not at all)
  // would be caught.
  Fixture f = MakeSparseFixture(GetParam() * 1000 + 211, 24, 8, 4);
  const std::string qs = "SELECT snap_id FROM SnapIds";

  auto dump = [&](const std::string& table) {
    auto rows = f.meta->Query("SELECT * FROM " + table);
    EXPECT_TRUE(rows.ok()) << table << ": " << rows.status().ToString();
    std::vector<std::string> out;
    for (const Row& row : rows->rows) out.push_back(sql::EncodeRow(row));
    return out;
  };

  retro::MetricsRegistry registry;
  auto memo_sums = [&](const RqlRunStats& stats) {
    struct Sums {
      int64_t hits = 0, misses = 0, bytes = 0, evictions = 0;
    } s;
    for (const RqlIterationStats& it : stats.iterations) {
      s.hits += it.memo_hits;
      s.misses += it.memo_misses;
      s.bytes += it.memo_bytes;
      s.evictions += it.memo_evictions;
    }
    return s;
  };
  // The registry delta taken around a run must equal the per-iteration
  // stats exactly, whatever flags were active.
  auto expect_memo_delta_matches =
      [&](const retro::MetricsRegistry::Snapshot& delta,
          const std::string& label) {
        auto s = memo_sums(f.engine->last_run_stats());
        EXPECT_EQ(delta.counter("rql.memo_hits"), s.hits) << label;
        EXPECT_EQ(delta.counter("rql.memo_misses"), s.misses) << label;
        EXPECT_EQ(delta.counter("rql.memo_bytes"), s.bytes) << label;
        EXPECT_EQ(delta.counter("rql.memo_evictions"), s.evictions) << label;
      };

  struct Mech {
    const char* name;
    std::function<Status(const std::string&)> run;
  };
  const std::vector<Mech> mechs = {
      {"collate",
       [&](const std::string& t) {
         return f.engine->CollateData(qs, "SELECT item, score FROM live", t);
       }},
      {"aggvar",
       [&](const std::string& t) {
         return f.engine->AggregateDataInVariable(
             qs, "SELECT COUNT(*) AS c FROM live", t, "sum");
       }},
      {"aggtable",
       [&](const std::string& t) {
         return f.engine->AggregateDataInTable(
             qs, "SELECT item, score FROM live", t, "(score,max)");
       }},
      {"intervals",
       [&](const std::string& t) {
         return f.engine->CollateDataIntoIntervals(
             qs, "SELECT item FROM live", t);
       }},
  };

  struct Config {
    const char* name;
    bool reuse, skip, batch;
    int workers;
  };
  const Config kConfigs[] = {
      {"memo", false, false, false, 1},
      {"memo_reuse", true, false, false, 1},
      {"memo_skip", false, true, false, 1},
      {"memo_batch", false, false, true, 1},
      {"memo_parallel", false, false, false, 4},
      {"memo_all_flags", true, true, true, 1},
  };

  for (const Mech& m : mechs) {
    *f.engine->mutable_options() = RqlOptions{};
    f.data->store()->ClearSnapshotCache();
    std::string base_table = std::string("base_") + m.name;
    ASSERT_TRUE(m.run(base_table).ok()) << m.name;
    // Flags-off runs must not engage the memo at all.
    auto off = memo_sums(f.engine->last_run_stats());
    EXPECT_EQ(off.hits, 0) << m.name;
    EXPECT_EQ(off.misses, 0) << m.name;
    std::vector<std::string> baseline = dump(base_table);

    for (const Config& c : kConfigs) {
      // Every configuration gets its own persistent memo so cold/warm hit
      // accounting is exact.
      auto memo = retro::MemoTable::Open(
          f.env.get(), std::string("memo_") + m.name + "_" + c.name);
      ASSERT_TRUE(memo.ok()) << memo.status().ToString();
      RqlOptions opts;
      opts.memoize_iterations = true;
      opts.memo = memo->get();
      opts.reuse_decoded_pages = c.reuse;
      opts.skip_unchanged_iterations = c.skip;
      opts.batch_execution = c.batch;
      opts.parallel_workers = c.workers;
      opts.metrics = &registry;
      *f.engine->mutable_options() = opts;

      f.data->store()->ClearSnapshotCache();
      std::string table = std::string(m.name) + "_" + c.name;
      retro::MetricsRegistry::Snapshot before = registry.TakeSnapshot();
      ASSERT_TRUE(m.run(table + "_cold").ok()) << table;
      expect_memo_delta_matches(registry.TakeSnapshot().DeltaFrom(before),
                                table + "_cold");
      EXPECT_EQ(dump(table + "_cold"), baseline) << table;
      auto cold = memo_sums(f.engine->last_run_stats());
      EXPECT_EQ(cold.hits, 0) << table;
      EXPECT_GT(cold.misses, 0) << table;
      EXPECT_GT(cold.bytes, 0) << table;

      f.data->store()->ClearSnapshotCache();
      before = registry.TakeSnapshot();
      ASSERT_TRUE(m.run(table + "_warm").ok()) << table;
      expect_memo_delta_matches(registry.TakeSnapshot().DeltaFrom(before),
                                table + "_warm");
      EXPECT_EQ(dump(table + "_warm"), baseline) << table;
      const RqlRunStats& stats = f.engine->last_run_stats();
      auto warm = memo_sums(stats);
      EXPECT_GT(warm.hits, 0) << table;
      if (!c.skip && !stats.parallel) {
        // Without the intra-run skipper in front, every iteration of the
        // warm run must replay straight from the memo.
        EXPECT_EQ(warm.hits,
                  static_cast<int64_t>(stats.iterations.size()))
            << table;
        EXPECT_EQ(warm.misses, 0) << table;
      }
    }
  }
}

TEST_P(RqlPropertyTest, AsyncPrefetchPreservesAllMechanismOutputs) {
  // async_prefetch is a pure optimization: overlapping the next iteration's
  // archive reads with the current iteration's compute must leave every
  // mechanism's result table byte-identical to the flags-off baseline,
  // alone and stacked on batching, memoization, the cross-run shared scan
  // cache, and parallel workers (where the flag is ignored). The registry
  // delta taken around each run must equal the per-iteration prefetch
  // stats exactly.
  Fixture f = MakeSparseFixture(GetParam() * 1000 + 229, 24, 8, 4);
  const std::string qs = "SELECT snap_id FROM SnapIds";

  auto dump = [&](const std::string& table) {
    auto rows = f.meta->Query("SELECT * FROM " + table);
    EXPECT_TRUE(rows.ok()) << table << ": " << rows.status().ToString();
    std::vector<std::string> out;
    for (const Row& row : rows->rows) out.push_back(sql::EncodeRow(row));
    return out;
  };

  retro::MetricsRegistry registry;
  auto prefetch_sums = [&](const RqlRunStats& stats) {
    struct Sums {
      int64_t issued = 0, hits = 0, wasted = 0, cancelled = 0;
    } s;
    for (const RqlIterationStats& it : stats.iterations) {
      s.issued += it.prefetch_issued;
      s.hits += it.prefetch_hits;
      s.wasted += it.prefetch_wasted;
      s.cancelled += it.prefetch_cancelled;
    }
    return s;
  };
  auto expect_prefetch_delta_matches =
      [&](const retro::MetricsRegistry::Snapshot& delta,
          const std::string& label) {
        auto s = prefetch_sums(f.engine->last_run_stats());
        EXPECT_EQ(delta.counter("rql.prefetch_issued"), s.issued) << label;
        EXPECT_EQ(delta.counter("rql.prefetch_hits"), s.hits) << label;
        EXPECT_EQ(delta.counter("rql.prefetch_wasted"), s.wasted) << label;
        EXPECT_EQ(delta.counter("rql.prefetch_cancelled"), s.cancelled)
            << label;
      };

  struct Mech {
    const char* name;
    // True when every iteration does enough result-side work (hundreds of
    // row inserts) that the background worker reliably plans and issues
    // before the next iteration head collects the job. aggvar's COUNT(*)
    // folds finish in the same microseconds the worker needs to wake, so
    // its jobs can legitimately be collected un-started (demand priority)
    // and liveness cannot be asserted.
    bool heavy;
    std::function<Status(const std::string&)> run;
  };
  const std::vector<Mech> mechs = {
      {"collate", true,
       [&](const std::string& t) {
         return f.engine->CollateData(qs, "SELECT item, score FROM live", t);
       }},
      {"aggvar", false,
       [&](const std::string& t) {
         return f.engine->AggregateDataInVariable(
             qs, "SELECT COUNT(*) AS c FROM live", t, "sum");
       }},
      {"aggtable", true,
       [&](const std::string& t) {
         return f.engine->AggregateDataInTable(
             qs, "SELECT item, score FROM live", t, "(score,max)");
       }},
      {"intervals", true,
       [&](const std::string& t) {
         return f.engine->CollateDataIntoIntervals(
             qs, "SELECT item FROM live", t);
       }},
  };

  struct Config {
    const char* name;
    bool batch, memo, shared;
    int workers, budget;
  };
  const Config kConfigs[] = {
      {"pf", false, false, false, 1, 64},
      {"pf_batch", true, false, false, 1, 64},
      {"pf_memo", false, true, false, 1, 64},
      {"pf_shared", false, false, true, 1, 64},
      {"pf_tiny_budget", false, false, false, 1, 1},
      {"pf_parallel", false, false, false, 4, 64},
      {"pf_all", true, true, true, 1, 64},
  };

  sql::SharedScanCache shared_cache;
  for (const Mech& m : mechs) {
    *f.engine->mutable_options() = RqlOptions{};
    f.data->store()->ClearSnapshotCache();
    std::string base_table = std::string("base_") + m.name;
    ASSERT_TRUE(m.run(base_table).ok()) << m.name;
    // Flags-off runs must not engage the scheduler at all.
    auto off = prefetch_sums(f.engine->last_run_stats());
    EXPECT_EQ(off.issued + off.hits + off.wasted + off.cancelled, 0)
        << m.name;
    std::vector<std::string> baseline = dump(base_table);

    for (const Config& c : kConfigs) {
      auto memo = retro::MemoTable::Open(
          f.env.get(), std::string("pfmemo_") + m.name + "_" + c.name);
      ASSERT_TRUE(memo.ok()) << memo.status().ToString();
      RqlOptions opts;
      opts.async_prefetch = true;
      opts.prefetch_budget_pages = c.budget;
      opts.batch_pagelog_reads = c.batch;
      opts.batch_execution = c.batch;
      if (c.memo) {
        opts.memoize_iterations = true;
        opts.memo = memo->get();
      }
      if (c.shared) opts.shared_scan_cache = &shared_cache;
      opts.parallel_workers = c.workers;
      opts.metrics = &registry;
      *f.engine->mutable_options() = opts;

      std::string table = std::string(m.name) + "_" + c.name;
      for (const char* pass : {"_cold", "_warm"}) {
        f.data->store()->ClearSnapshotCache();
        retro::MetricsRegistry::Snapshot before = registry.TakeSnapshot();
        ASSERT_TRUE(m.run(table + pass).ok()) << table << pass;
        expect_prefetch_delta_matches(
            registry.TakeSnapshot().DeltaFrom(before), table + pass);
        EXPECT_EQ(dump(table + pass), baseline) << table << pass;
      }
      const RqlRunStats& stats = f.engine->last_run_stats();
      auto warm = prefetch_sums(stats);
      if (stats.parallel) {
        // The flag is ignored under parallel workers: nothing scheduled.
        EXPECT_EQ(warm.issued + warm.hits + warm.cancelled, 0) << table;
      } else if (c.memo) {
        // Every warm iteration replays from the memo, so the memo-aware
        // planner schedules nothing ahead of it.
        EXPECT_EQ(warm.issued, 0) << table;
      } else {
        EXPECT_LE(warm.hits + warm.wasted, warm.issued) << table;
        if (m.heavy) {
          // Every commit churns the SnapIds page, so each step's delta
          // holds at least one certainly-missing pre-state for the planner
          // to issue while the heavy iteration executes. hits stay
          // unasserted here: whether an issued page lands before the
          // consuming iteration's own demand read is pure scheduling luck
          // on a loaded machine. Deterministic consumption crediting is
          // covered by prefetch_scheduler_test (which drains the job
          // before consuming) and gated for real by bench_pipeline.
          EXPECT_GT(warm.issued, 0) << table;
        }
      }
    }
  }
}

TEST(RqlPrefetchOptionsTest, PrefetchIncompatibleWithColdCachePerIteration) {
  // A background fetch landing after the per-iteration clear would warm
  // the all-cold baseline the flag exists to measure.
  Fixture f = MakeSparseFixture(9, 6, 4, 2);
  f.engine->mutable_options()->async_prefetch = true;
  f.engine->mutable_options()->cold_cache_per_iteration = true;
  Status s = f.engine->CollateData("SELECT snap_id FROM SnapIds",
                                   "SELECT item FROM live", "Result");
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_EQ(f.meta->catalog()->data().FindTable("Result"), nullptr);
}

TEST(RqlPageSharingOptionsTest, SkipIncompatibleWithColdCachePerIteration) {
  // A replayed iteration reads nothing, so the all-cold baseline that
  // cold_cache_per_iteration defines would silently not be measured.
  Fixture f = MakeSparseFixture(7, 6, 4, 2);
  f.engine->mutable_options()->skip_unchanged_iterations = true;
  f.engine->mutable_options()->cold_cache_per_iteration = true;
  Status s = f.engine->CollateData("SELECT snap_id FROM SnapIds",
                                   "SELECT item FROM live", "Result");
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_EQ(f.meta->catalog()->data().FindTable("Result"), nullptr);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RqlPropertyTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace rql

#include "sql/parser.h"

#include <gtest/gtest.h>

#include "sql/lexer.h"

namespace rql::sql {
namespace {

Result<SelectStmt> ParseSelectStmt(std::string_view sql) {
  RQL_ASSIGN_OR_RETURN(Statement stmt, ParseSingle(sql));
  auto* select = std::get_if<SelectStmt>(&stmt);
  if (select == nullptr) return Status::InvalidArgument("not a SELECT");
  return std::move(*select);
}

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT a, 42, 3.5, 'it''s' FROM t;");
  ASSERT_TRUE(tokens.ok());
  // SELECT a , 42 , 3.5 , 'it's' FROM t ; EOF
  ASSERT_EQ(tokens->size(), 12u);
  EXPECT_EQ((*tokens)[3].text, "42");
  EXPECT_EQ((*tokens)[5].type, TokenType::kFloat);
  EXPECT_EQ((*tokens)[7].type, TokenType::kString);
  EXPECT_EQ((*tokens)[7].text, "it's");
}

TEST(LexerTest, CommentsAndOperators) {
  auto tokens = Tokenize("a <= b -- trailing comment\n <> c");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].text, "<=");
  EXPECT_EQ((*tokens)[3].text, "<>");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("SELECT 'oops").ok());
}

TEST(LexerTest, BlockComments) {
  auto tokens = Tokenize("a /* comment, even * and / inside */ + b");
  ASSERT_TRUE(tokens.ok());
  // a + b EOF
  ASSERT_EQ(tokens->size(), 4u);
  EXPECT_EQ((*tokens)[0].text, "a");
  EXPECT_EQ((*tokens)[1].text, "+");
  EXPECT_EQ((*tokens)[2].text, "b");
}

TEST(LexerTest, BlockCommentSpansLines) {
  auto tokens = Tokenize("SELECT /* line one\nline two */ 1");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);  // SELECT 1 EOF
}

TEST(LexerTest, UnterminatedBlockCommentFails) {
  EXPECT_FALSE(Tokenize("SELECT 1 /* oops").ok());
}

TEST(LexerTest, BlockCommentDelimitersInsideStringAreLiteral) {
  auto tokens = Tokenize("SELECT '/* not a comment */'");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);
  EXPECT_EQ((*tokens)[1].type, TokenType::kString);
  EXPECT_EQ((*tokens)[1].text, "/* not a comment */");
}

TEST(ParserTest, SimpleSelect) {
  auto s = ParseSelectStmt("SELECT a, b FROM t WHERE a = 1");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->items.size(), 2u);
  ASSERT_EQ(s->from.size(), 1u);
  EXPECT_EQ(s->from[0].name, "t");
  ASSERT_NE(s->where, nullptr);
  EXPECT_EQ(s->where->bin_op, BinOp::kEq);
}

TEST(ParserTest, SelectAsOf) {
  auto s = ParseSelectStmt("SELECT AS OF 7 * FROM LoggedIn");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->as_of, 7u);
  ASSERT_EQ(s->items.size(), 1u);
  EXPECT_EQ(s->items[0].expr->kind, ExprKind::kStar);
}

TEST(ParserTest, SelectAsOfParameter) {
  auto s = ParseSelectStmt("SELECT AS OF ? * FROM LoggedIn");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->as_of, 0u);
  ASSERT_NE(s->as_of_param, nullptr);
  EXPECT_EQ(s->as_of_param->kind, ExprKind::kParameter);
  EXPECT_EQ(s->as_of_param->param_index, 1);
}

TEST(ParserTest, SelectAsOfParameterCountsBeforeLaterPlaceholders) {
  auto s = ParseSelectStmt("SELECT AS OF ? a FROM t WHERE a = ?");
  ASSERT_TRUE(s.ok());
  ASSERT_NE(s->as_of_param, nullptr);
  EXPECT_EQ(s->as_of_param->param_index, 1);
  ASSERT_NE(s->where, nullptr);
  ASSERT_EQ(s->where->args.size(), 2u);
  EXPECT_EQ(s->where->args[1]->param_index, 2);
}

TEST(ParserTest, SelectAsOfRejectsGarbage) {
  EXPECT_FALSE(ParseSelectStmt("SELECT AS OF banana * FROM t").ok());
}

TEST(ParserTest, SelectAsOfDistinct) {
  auto s = ParseSelectStmt(
      "SELECT AS OF 3 DISTINCT l_userid FROM LoggedIn WHERE x = 'UserB'");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->as_of, 3u);
  EXPECT_TRUE(s->distinct);
}

TEST(ParserTest, PaperQqCpuQuery) {
  auto s = ParseSelectStmt(
      "SELECT SUM(l_extendedprice) AS revenue FROM lineitem, part "
      "WHERE p_partkey = l_partkey and p_type = 'STANDARD POLISHED TIN'");
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->from.size(), 2u);
  EXPECT_EQ(s->items[0].alias, "revenue");
  ASSERT_NE(s->where, nullptr);
  EXPECT_EQ(s->where->bin_op, BinOp::kAnd);
}

TEST(ParserTest, GroupByWithAggregatesAndAliases) {
  auto s = ParseSelectStmt(
      "SELECT o_custkey, COUNT(*) AS cn, AVG(o_totalprice) AS av "
      "FROM orders GROUP BY o_custkey");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->group_by.size(), 1u);
  EXPECT_EQ(s->items[1].alias, "cn");
  EXPECT_EQ(s->items[1].expr->kind, ExprKind::kFunctionCall);
  EXPECT_EQ(s->items[1].expr->args[0]->kind, ExprKind::kStar);
}

TEST(ParserTest, JoinOnFoldsIntoWhere) {
  auto s = ParseSelectStmt(
      "SELECT a.x FROM a JOIN b ON a.id = b.id WHERE b.y > 2");
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->from.size(), 2u);
  ASSERT_NE(s->where, nullptr);
  EXPECT_EQ(s->where->bin_op, BinOp::kAnd);
}

TEST(ParserTest, OrderLimitHavingDistinct) {
  auto s = ParseSelectStmt(
      "SELECT DISTINCT a FROM t GROUP BY a HAVING COUNT(*) > 1 "
      "ORDER BY a DESC, 2 ASC LIMIT 10");
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->distinct);
  ASSERT_NE(s->having, nullptr);
  ASSERT_EQ(s->order_by.size(), 2u);
  EXPECT_TRUE(s->order_by[0].desc);
  EXPECT_FALSE(s->order_by[1].desc);
  EXPECT_EQ(s->limit, 10);
}

TEST(ParserTest, TableAliases) {
  auto s = ParseSelectStmt("SELECT o.id FROM orders o, lineitem AS l");
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->from.size(), 2u);
  EXPECT_EQ(s->from[0].alias, "o");
  EXPECT_EQ(s->from[1].alias, "l");
}

TEST(ParserTest, CreateTable) {
  auto stmt = ParseSingle(
      "CREATE TABLE LoggedIn (l_userid TEXT, l_time TEXT, l_country TEXT)");
  ASSERT_TRUE(stmt.ok());
  auto* create = std::get_if<CreateTableStmt>(&*stmt);
  ASSERT_NE(create, nullptr);
  EXPECT_EQ(create->name, "LoggedIn");
  ASSERT_EQ(create->schema.columns.size(), 3u);
  EXPECT_EQ(create->schema.columns[0].type, ValueType::kText);
}

TEST(ParserTest, CreateTableWithConstraintNoise) {
  auto stmt = ParseSingle(
      "CREATE TABLE t (id INTEGER PRIMARY KEY, v DECIMAL(12,2) NOT NULL, "
      "name VARCHAR(55))");
  ASSERT_TRUE(stmt.ok());
  auto* create = std::get_if<CreateTableStmt>(&*stmt);
  ASSERT_NE(create, nullptr);
  EXPECT_EQ(create->schema.columns[1].type, ValueType::kReal);
  EXPECT_EQ(create->schema.columns[2].type, ValueType::kText);
}

TEST(ParserTest, CreateTableAsSelect) {
  auto stmt = ParseSingle("CREATE TABLE t AS SELECT a, b FROM u");
  ASSERT_TRUE(stmt.ok());
  auto* create = std::get_if<CreateTableStmt>(&*stmt);
  ASSERT_NE(create, nullptr);
  ASSERT_NE(create->as_select, nullptr);
  EXPECT_EQ(create->as_select->items.size(), 2u);
}

TEST(ParserTest, CreateIndex) {
  auto stmt = ParseSingle("CREATE INDEX idx ON orders (o_orderkey)");
  ASSERT_TRUE(stmt.ok());
  auto* create = std::get_if<CreateIndexStmt>(&*stmt);
  ASSERT_NE(create, nullptr);
  EXPECT_EQ(create->table, "orders");
  ASSERT_EQ(create->columns.size(), 1u);
}

TEST(ParserTest, InsertValuesMultiRow) {
  auto stmt = ParseSingle(
      "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  ASSERT_TRUE(stmt.ok());
  auto* insert = std::get_if<InsertStmt>(&*stmt);
  ASSERT_NE(insert, nullptr);
  EXPECT_EQ(insert->columns.size(), 2u);
  EXPECT_EQ(insert->rows.size(), 2u);
}

TEST(ParserTest, InsertSelect) {
  auto stmt = ParseSingle("INSERT INTO t SELECT * FROM u WHERE a > 0");
  ASSERT_TRUE(stmt.ok());
  auto* insert = std::get_if<InsertStmt>(&*stmt);
  ASSERT_NE(insert, nullptr);
  ASSERT_NE(insert->select, nullptr);
}

TEST(ParserTest, UpdateDelete) {
  auto upd = ParseSingle("UPDATE t SET a = a + 1, b = 'z' WHERE id = 3");
  ASSERT_TRUE(upd.ok());
  auto* update = std::get_if<UpdateStmt>(&*upd);
  ASSERT_NE(update, nullptr);
  EXPECT_EQ(update->assignments.size(), 2u);

  auto del = ParseSingle("DELETE FROM LoggedIn WHERE l_userid = 'UserA'");
  ASSERT_TRUE(del.ok());
  auto* delete_stmt = std::get_if<DeleteStmt>(&*del);
  ASSERT_NE(delete_stmt, nullptr);
  EXPECT_NE(delete_stmt->where, nullptr);
}

TEST(ParserTest, TransactionStatements) {
  auto script = ParseSql("BEGIN; COMMIT WITH SNAPSHOT; BEGIN; ROLLBACK;");
  ASSERT_TRUE(script.ok());
  ASSERT_EQ(script->size(), 4u);
  auto* commit = std::get_if<CommitStmt>(&(*script)[1]);
  ASSERT_NE(commit, nullptr);
  EXPECT_TRUE(commit->with_snapshot);
  EXPECT_NE(std::get_if<RollbackStmt>(&(*script)[3]), nullptr);
}

TEST(ParserTest, MultiStatementScript) {
  auto script = ParseSql(
      "CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1); "
      "SELECT * FROM t;");
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->size(), 3u);
}

TEST(ParserTest, ExpressionPrecedence) {
  auto s = ParseSelectStmt("SELECT 1 + 2 * 3 = 7 AND NOT 0");
  ASSERT_TRUE(s.ok());
  const Expr& top = *s->items[0].expr;
  EXPECT_EQ(top.bin_op, BinOp::kAnd);
  EXPECT_EQ(top.args[0]->bin_op, BinOp::kEq);
  EXPECT_EQ(top.args[0]->args[0]->bin_op, BinOp::kAdd);
}

TEST(ParserTest, IsNullAndLike) {
  auto s = ParseSelectStmt(
      "SELECT * FROM t WHERE a IS NULL OR b IS NOT NULL OR c LIKE 'x%'");
  ASSERT_TRUE(s.ok());
  ASSERT_NE(s->where, nullptr);
}

TEST(ParserTest, FunctionCallWithDistinctArg) {
  auto s = ParseSelectStmt("SELECT COUNT(DISTINCT a) FROM t");
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->items[0].expr->distinct_arg);
}

TEST(ParserTest, NegativeNumbersAndUnaryMinus) {
  auto s = ParseSelectStmt("SELECT -5, -x FROM t");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->items[0].expr->kind, ExprKind::kUnary);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSql("SELEC 1").ok());
  EXPECT_FALSE(ParseSql("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSql("INSERT INTO").ok());
  EXPECT_FALSE(ParseSql("CREATE TABLE t (a BOGUS)").ok());
  EXPECT_FALSE(ParseSql("SELECT 1 SELECT 2").ok());
  EXPECT_FALSE(ParseSql("DELETE t").ok());
}

TEST(ParserTest, IntegerLiteralOverflowIsAParseError) {
  // An out-of-range literal must come back as a Status, never throw or
  // silently wrap.
  auto big = ParseSql("SELECT 99999999999999999999 FROM t");
  ASSERT_FALSE(big.ok());
  EXPECT_NE(big.status().ToString().find("out of range"),
            std::string::npos);
  EXPECT_FALSE(ParseSql("SELECT * FROM t WHERE a = 18446744073709551616")
                   .ok());
  // The extremes that do fit still parse.
  auto max = ParseSelectStmt("SELECT 9223372036854775807 FROM t");
  ASSERT_TRUE(max.ok());
  EXPECT_EQ(max->items[0].expr->literal.integer(), 9223372036854775807LL);
}

TEST(ParserTest, LimitOverflowIsAParseError) {
  EXPECT_FALSE(
      ParseSql("SELECT a FROM t LIMIT 99999999999999999999").ok());
  auto ok = ParseSelectStmt("SELECT a FROM t LIMIT 10");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->limit, 10);
}

TEST(ParserTest, FloatLiteralOverflowIsAParseError) {
  auto inf = ParseSql("SELECT 1e999 FROM t");
  ASSERT_FALSE(inf.ok());
  EXPECT_NE(inf.status().ToString().find("out of range"),
            std::string::npos);
  EXPECT_FALSE(ParseSql("SELECT a FROM t WHERE b < 1.5e400").ok());
  // Underflow rounds to zero rather than erroring (it is representable).
  auto tiny = ParseSelectStmt("SELECT 1e-999 FROM t");
  ASSERT_TRUE(tiny.ok());
  EXPECT_EQ(tiny->items[0].expr->literal.real(), 0.0);
}

TEST(ParserTest, AsOfSnapshotIdOverflowIsAParseError) {
  // Snapshot ids are uint32; anything wider must be rejected, not
  // truncated to a different snapshot.
  EXPECT_FALSE(ParseSql("SELECT AS OF 4294967296 a FROM t").ok());
  EXPECT_FALSE(
      ParseSql("SELECT AS OF 99999999999999999999 a FROM t").ok());
  auto max = ParseSelectStmt("SELECT AS OF 4294967295 a FROM t");
  ASSERT_TRUE(max.ok());
}

TEST(ParserTest, RqlUdfInvocationShape) {
  // The paper's UDF-embedded form must parse as a plain SELECT with a
  // function call over SnapIds.
  auto s = ParseSelectStmt(
      "SELECT CollateData(snap_id, 'SELECT 1 FROM x', 'Result') "
      "FROM SnapIds WHERE snap_id < 50");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->items[0].expr->kind, ExprKind::kFunctionCall);
  EXPECT_EQ(s->items[0].expr->args.size(), 3u);
}

}  // namespace
}  // namespace rql::sql

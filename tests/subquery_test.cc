// Tests for uncorrelated subqueries: scalar position and IN (SELECT ...),
// including NULL propagation, caching, AS OF interaction and error cases.

#include <gtest/gtest.h>

#include "sql/database.h"

namespace rql::sql {
namespace {

class SubqueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(&env_, "t");
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    ASSERT_TRUE(db_->Exec("CREATE TABLE nums (n INTEGER)").ok());
    ASSERT_TRUE(db_->Exec(
        "INSERT INTO nums VALUES (1), (2), (3), (4), (5)").ok());
    ASSERT_TRUE(db_->Exec("CREATE TABLE picks (p INTEGER)").ok());
    ASSERT_TRUE(db_->Exec("INSERT INTO picks VALUES (2), (4)").ok());
  }

  Value Scalar(const std::string& sql) {
    auto v = db_->QueryScalar(sql);
    EXPECT_TRUE(v.ok()) << sql << " -> " << v.status().ToString();
    return v.ok() ? *v : Value::Text("<error>");
  }

  storage::InMemoryEnv env_;
  std::unique_ptr<Database> db_;
};

TEST_F(SubqueryTest, ScalarSubquery) {
  EXPECT_EQ(Scalar("SELECT (SELECT MAX(n) FROM nums)").integer(), 5);
  EXPECT_EQ(Scalar("SELECT (SELECT COUNT(*) FROM picks) * 10").integer(),
            20);
  // Empty result -> NULL.
  EXPECT_TRUE(
      Scalar("SELECT (SELECT n FROM nums WHERE n > 100)").is_null());
}

TEST_F(SubqueryTest, ScalarSubqueryInWhere) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM nums "
                   "WHERE n > (SELECT AVG(p) FROM picks)").integer(), 2);
}

TEST_F(SubqueryTest, InSubquery) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM nums "
                   "WHERE n IN (SELECT p FROM picks)").integer(), 2);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM nums "
                   "WHERE n NOT IN (SELECT p FROM picks)").integer(), 3);
}

TEST_F(SubqueryTest, InSubqueryWithNulls) {
  ASSERT_TRUE(db_->Exec("INSERT INTO picks VALUES (NULL)").ok());
  // Matches still succeed; non-matches become UNKNOWN -> filtered.
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM nums "
                   "WHERE n IN (SELECT p FROM picks)").integer(), 2);
  // NOT IN against a set containing NULL selects nothing.
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM nums "
                   "WHERE n NOT IN (SELECT p FROM picks)").integer(), 0);
}

TEST_F(SubqueryTest, MultiRowScalarSubqueryFails) {
  EXPECT_FALSE(db_->Query("SELECT (SELECT n FROM nums)").ok());
}

TEST_F(SubqueryTest, MultiColumnInSubqueryFails) {
  EXPECT_FALSE(db_->Query("SELECT COUNT(*) FROM nums "
                          "WHERE n IN (SELECT p, p FROM picks)").ok());
}

TEST_F(SubqueryTest, CorrelationIsRejected) {
  // Columns of the outer query are not visible inside the subquery.
  EXPECT_FALSE(db_->Query("SELECT n FROM nums "
                          "WHERE n = (SELECT MAX(p) FROM picks "
                          "WHERE p = n)").ok());
}

TEST_F(SubqueryTest, SubqueryInsideAsOfQuery) {
  ASSERT_TRUE(db_->Exec("BEGIN; COMMIT WITH SNAPSHOT;").ok());
  ASSERT_TRUE(db_->Exec("DELETE FROM nums WHERE n >= 3").ok());
  ASSERT_TRUE(db_->Exec("DELETE FROM picks WHERE p = 4").ok());
  // Outer AS OF applies to the subquery's tables too (same reader).
  EXPECT_EQ(Scalar("SELECT AS OF 1 COUNT(*) FROM nums "
                   "WHERE n IN (SELECT p FROM picks)").integer(), 2);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM nums "
                   "WHERE n IN (SELECT p FROM picks)").integer(), 1);
  // AS OF inside a subquery is rejected (apply it to the statement).
  EXPECT_FALSE(db_->Query("SELECT COUNT(*) FROM nums WHERE n IN "
                          "(SELECT AS OF 1 p FROM picks)").ok());
}

TEST_F(SubqueryTest, NestedSubqueries) {
  EXPECT_EQ(Scalar("SELECT (SELECT MAX(n) FROM nums WHERE n < "
                   "(SELECT MAX(p) FROM picks))").integer(), 3);
}

TEST_F(SubqueryTest, SubqueryInSelectListWithGroupBy) {
  auto r = db_->Query(
      "SELECT n % 2 AS parity, COUNT(*) AS c, "
      "(SELECT COUNT(*) FROM picks) AS pc "
      "FROM nums GROUP BY n % 2 ORDER BY parity");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0][2].integer(), 2);
  EXPECT_EQ(r->rows[1][2].integer(), 2);
}

TEST_F(SubqueryTest, DeleteWithInSubquery) {
  ASSERT_TRUE(
      db_->Exec("DELETE FROM nums WHERE n IN (SELECT p FROM picks)").ok());
  QueryResult r = *db_->Query("SELECT n FROM nums ORDER BY n");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].integer(), 1);
  EXPECT_EQ(r.rows[1][0].integer(), 3);
  EXPECT_EQ(r.rows[2][0].integer(), 5);
}

TEST_F(SubqueryTest, UpdateWithScalarSubquery) {
  // Set every number below the max pick to that max.
  ASSERT_TRUE(db_->Exec("UPDATE nums SET n = (SELECT MAX(p) FROM picks) "
                        "WHERE n < (SELECT MAX(p) FROM picks)").ok());
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM nums WHERE n = 4").integer(), 4);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM nums WHERE n = 5").integer(), 1);
}

TEST_F(SubqueryTest, DeleteSelfReferencingSubquery) {
  // The subquery snapshot-reads the same table being deleted from; the
  // collect-then-mutate execution makes this well-defined.
  ASSERT_TRUE(db_->Exec("DELETE FROM nums WHERE n = "
                        "(SELECT MAX(n) FROM nums)").ok());
  EXPECT_EQ(Scalar("SELECT MAX(n) FROM nums").integer(), 4);
}

}  // namespace
}  // namespace rql::sql

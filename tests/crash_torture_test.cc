// Crash-recovery torture: run the snapshotting TPC-H update workload once
// fault-free to enumerate every durability sync point, then kill the
// storage Env at each of them (losing all un-synced data), recover, and
// check the committed-prefix / snapshot-byte-identity / RQL-oracle
// invariants. See tpch/crash_torture.h for the exact invariants.

#include "tpch/crash_torture.h"

#include <gtest/gtest.h>

#include <iostream>

namespace rql::tpch {
namespace {

TEST(CrashTortureTest, EverySyncPointRecovers) {
  TortureConfig config;
  TortureReport report;
  Status s = RunCrashTorture(config, &report);
  ASSERT_TRUE(s.ok()) << s.ToString();
  // The workload has at least: a handful of schema auto-commits, plus
  // per-round commit (pagelog, maplog, WAL, db), declaration-mark and
  // SnapIds syncs for each of the 5 snapshots.
  EXPECT_GE(report.sync_points, 40);
  EXPECT_EQ(report.kill_points, report.sync_points);
  EXPECT_EQ(report.completed_runs, report.kill_points);
  std::cout << "[torture] sync points enumerated: " << report.sync_points
            << ", kill points exercised: " << report.kill_points
            << ", recovered+verified: " << report.completed_runs << "\n";
}

TEST(CrashTortureTest, MemoizedRunRecoversAtEverySyncPoint) {
  // With memoization on, the workload ends in a memoized RQL pass whose
  // per-iteration memo publishes sync — each is a new kill point. Killing
  // there leaves a partial (possibly torn) memo log; recovery must replay
  // the surviving entries and still answer byte-identically to the
  // memo-less oracle, warming back to full replay on the second pass.
  TortureConfig plain_config;
  plain_config.snapshots = 3;
  TortureReport plain;
  Status ps = RunCrashTorture(plain_config, &plain);
  ASSERT_TRUE(ps.ok()) << ps.ToString();

  TortureConfig config;
  config.snapshots = 3;
  config.memoize = true;
  TortureReport report;
  Status s = RunCrashTorture(config, &report);
  ASSERT_TRUE(s.ok()) << s.ToString();
  // The memoized pass added publish syncs to the kill-point space: at
  // least one per iteration of the first memoized mechanism.
  EXPECT_GE(report.sync_points, plain.sync_points + config.snapshots);
  EXPECT_EQ(report.kill_points, report.sync_points);
  EXPECT_EQ(report.completed_runs, report.kill_points);
  std::cout << "[torture] memoized sync points: " << report.sync_points
            << " (memo-less: " << plain.sync_points << "), recovered+verified: "
            << report.completed_runs << "\n";
}

TEST(CrashTortureTest, PrefetchedRunRecoversAtEverySyncPoint) {
  // With async_prefetch on, every RQL pass has background archive fetches
  // in flight when the crash lands. The pipeline's reads issue no syncs,
  // so the kill-point schedule is identical to the prefetch-less run; what
  // must hold is that a crash mid-fetch parks a clean error (the run fails
  // instead of wedging a worker or dereferencing the dead Env) and every
  // recovered answer stays byte-identical to the oracle.
  TortureConfig config;
  config.snapshots = 3;
  config.async_prefetch = true;
  TortureReport report;
  Status s = RunCrashTorture(config, &report);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_GT(report.sync_points, 0);
  EXPECT_EQ(report.kill_points, report.sync_points);
  EXPECT_EQ(report.completed_runs, report.kill_points);
  std::cout << "[torture] prefetched sync points: " << report.sync_points
            << ", recovered+verified: " << report.completed_runs << "\n";
}

TEST(CrashTortureTest, CappedRunExercisesPrefix) {
  TortureConfig config;
  config.snapshots = 3;
  config.max_kill_points = 10;
  config.verbose = true;
  TortureReport report;
  Status s = RunCrashTorture(config, &report);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(report.kill_points, 10);
  EXPECT_EQ(report.completed_runs, 10);
  EXPECT_EQ(report.log.size(), 10u);
}

}  // namespace
}  // namespace rql::tpch

// Tests for the extended expression features: IN / NOT IN, BETWEEN, CASE,
// CAST, LIKE, and the scalar built-in library — including their SQL
// three-valued-logic corner cases.

#include <gtest/gtest.h>

#include "sql/database.h"

namespace rql::sql {
namespace {

class ExprFeaturesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(&env_, "t");
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
  }

  Value Scalar(const std::string& sql) {
    auto v = db_->QueryScalar("SELECT " + sql);
    EXPECT_TRUE(v.ok()) << sql << " -> " << v.status().ToString();
    return v.ok() ? *v : Value::Text("<error>");
  }

  storage::InMemoryEnv env_;
  std::unique_ptr<Database> db_;
};

TEST_F(ExprFeaturesTest, InList) {
  EXPECT_EQ(Scalar("2 IN (1, 2, 3)").integer(), 1);
  EXPECT_EQ(Scalar("5 IN (1, 2, 3)").integer(), 0);
  EXPECT_EQ(Scalar("'b' IN ('a', 'b')").integer(), 1);
  EXPECT_EQ(Scalar("2 NOT IN (1, 3)").integer(), 1);
  EXPECT_EQ(Scalar("2 NOT IN (1, 2)").integer(), 0);
  // Expressions as candidates.
  EXPECT_EQ(Scalar("4 IN (1 + 3, 9)").integer(), 1);
}

TEST_F(ExprFeaturesTest, InThreeValuedLogic) {
  // A match wins even when NULLs are present.
  EXPECT_EQ(Scalar("2 IN (NULL, 2)").integer(), 1);
  // No match + NULL present -> NULL (unknown).
  EXPECT_TRUE(Scalar("5 IN (NULL, 2)").is_null());
  EXPECT_TRUE(Scalar("NULL IN (1, 2)").is_null());
  // NOT IN with NULL candidate is never TRUE.
  EXPECT_TRUE(Scalar("5 NOT IN (NULL, 2)").is_null());
  EXPECT_EQ(Scalar("2 NOT IN (NULL, 2)").integer(), 0);
}

TEST_F(ExprFeaturesTest, Between) {
  EXPECT_EQ(Scalar("5 BETWEEN 1 AND 10").integer(), 1);
  EXPECT_EQ(Scalar("1 BETWEEN 1 AND 10").integer(), 1);   // inclusive
  EXPECT_EQ(Scalar("10 BETWEEN 1 AND 10").integer(), 1);  // inclusive
  EXPECT_EQ(Scalar("11 BETWEEN 1 AND 10").integer(), 0);
  EXPECT_EQ(Scalar("5 NOT BETWEEN 1 AND 10").integer(), 0);
  EXPECT_EQ(Scalar("'m' BETWEEN 'a' AND 'z'").integer(), 1);
  // Date-style text ranges, as in TPC-H predicates.
  EXPECT_EQ(Scalar("'1995-06-15' BETWEEN '1995-01-01' AND '1995-12-31'")
                .integer(), 1);
}

TEST_F(ExprFeaturesTest, SearchedCase) {
  EXPECT_EQ(Scalar("CASE WHEN 1 > 2 THEN 'a' WHEN 2 > 1 THEN 'b' "
                   "ELSE 'c' END").text(), "b");
  EXPECT_EQ(Scalar("CASE WHEN 1 > 2 THEN 'a' ELSE 'c' END").text(), "c");
  EXPECT_TRUE(Scalar("CASE WHEN 1 > 2 THEN 'a' END").is_null());
}

TEST_F(ExprFeaturesTest, SimpleCaseWithBase) {
  EXPECT_EQ(Scalar("CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' END").text(),
            "two");
  EXPECT_EQ(Scalar("CASE 'x' WHEN 'y' THEN 1 ELSE 0 END").integer(), 0);
  // NULL base never matches a WHEN.
  EXPECT_EQ(Scalar("CASE NULL WHEN NULL THEN 1 ELSE 0 END").integer(), 0);
}

TEST_F(ExprFeaturesTest, Cast) {
  EXPECT_EQ(Scalar("CAST('42' AS INTEGER)").integer(), 42);
  EXPECT_EQ(Scalar("CAST(3.9 AS INTEGER)").integer(), 3);
  EXPECT_DOUBLE_EQ(Scalar("CAST('2.5' AS REAL)").real(), 2.5);
  EXPECT_EQ(Scalar("CAST(7 AS TEXT)").text(), "7");
  EXPECT_TRUE(Scalar("CAST(NULL AS INTEGER)").is_null());
  EXPECT_EQ(Scalar("CAST('junk' AS INTEGER)").integer(), 0);
}

TEST_F(ExprFeaturesTest, NewBuiltins) {
  EXPECT_DOUBLE_EQ(Scalar("ROUND(2.567, 2)").real(), 2.57);
  EXPECT_DOUBLE_EQ(Scalar("ROUND(2.5)").real(), 3.0);
  EXPECT_TRUE(Scalar("NULLIF(3, 3)").is_null());
  EXPECT_EQ(Scalar("NULLIF(3, 4)").integer(), 3);
  EXPECT_EQ(Scalar("TRIM('  hi  ')").text(), "hi");
  EXPECT_EQ(Scalar("REPLACE('aXbXc', 'X', '-')").text(), "a-b-c");
  EXPECT_EQ(Scalar("INSTR('hello', 'll')").integer(), 3);
  EXPECT_EQ(Scalar("INSTR('hello', 'z')").integer(), 0);
}

TEST_F(ExprFeaturesTest, FeaturesInsideQueries) {
  ASSERT_TRUE(db_->Exec("CREATE TABLE t (x INTEGER, tag TEXT)").ok());
  ASSERT_TRUE(db_->Exec(
      "INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'a'), "
      "(4, 'c'), (NULL, 'a')").ok());

  auto in_filter = db_->QueryScalar(
      "SELECT COUNT(*) FROM t WHERE tag IN ('a', 'c')");
  ASSERT_TRUE(in_filter.ok());
  EXPECT_EQ(in_filter->integer(), 4);

  auto between = db_->QueryScalar(
      "SELECT COUNT(*) FROM t WHERE x BETWEEN 2 AND 3");
  ASSERT_TRUE(between.ok());
  EXPECT_EQ(between->integer(), 2);

  // CASE in the select list with aggregation.
  auto bucketed = db_->Query(
      "SELECT CASE WHEN x <= 2 THEN 'low' ELSE 'high' END AS bucket, "
      "COUNT(*) AS c FROM t WHERE x IS NOT NULL "
      "GROUP BY CASE WHEN x <= 2 THEN 'low' ELSE 'high' END "
      "ORDER BY bucket");
  ASSERT_TRUE(bucketed.ok()) << bucketed.status().ToString();
  ASSERT_EQ(bucketed->rows.size(), 2u);
  EXPECT_EQ(bucketed->rows[0][0].text(), "high");
  EXPECT_EQ(bucketed->rows[0][1].integer(), 2);
  EXPECT_EQ(bucketed->rows[1][1].integer(), 2);
}

TEST_F(ExprFeaturesTest, ArithmeticEdgeCases) {
  // Division/modulo by zero yield NULL (SQLite semantics), not an error.
  EXPECT_TRUE(Scalar("1 / 0").is_null());
  EXPECT_TRUE(Scalar("1 % 0").is_null());
  EXPECT_TRUE(Scalar("1.5 / 0").is_null());
  // Integer division stays integral only when exact.
  EXPECT_EQ(Scalar("10 / 2").integer(), 5);
  EXPECT_DOUBLE_EQ(Scalar("7 / 2").real(), 3.5);
  // Mixed-type arithmetic promotes to real.
  EXPECT_DOUBLE_EQ(Scalar("1 + 0.5").real(), 1.5);
  // NULL propagates through arithmetic.
  EXPECT_TRUE(Scalar("NULL + 1").is_null());
  EXPECT_TRUE(Scalar("-(NULL)").is_null());
  // Text arithmetic is an error, not silent coercion.
  EXPECT_FALSE(db_->Query("SELECT 'a' + 1").ok());
  EXPECT_FALSE(db_->Query("SELECT -'a'").ok());
}

TEST_F(ExprFeaturesTest, ComparisonEdgeCases) {
  // Cross-type numeric comparison.
  EXPECT_EQ(Scalar("2 = 2.0").integer(), 1);
  EXPECT_EQ(Scalar("2 < 2.5").integer(), 1);
  // Type-rank ordering: numbers sort below text.
  EXPECT_EQ(Scalar("999999 < 'a'").integer(), 1);
  // NULL comparisons are UNKNOWN.
  EXPECT_TRUE(Scalar("NULL = NULL").is_null());
  EXPECT_TRUE(Scalar("1 < NULL").is_null());
  // Kleene logic shortcuts around NULL.
  EXPECT_EQ(Scalar("0 AND NULL").integer(), 0);
  EXPECT_TRUE(Scalar("1 AND NULL").is_null());
  EXPECT_EQ(Scalar("1 OR NULL").integer(), 1);
  EXPECT_TRUE(Scalar("0 OR NULL").is_null());
  EXPECT_TRUE(Scalar("NOT NULL").is_null());
}

TEST_F(ExprFeaturesTest, NotStillWorksOutsideInBetween) {
  EXPECT_EQ(Scalar("NOT 0").integer(), 1);
  EXPECT_EQ(Scalar("NOT 1 = 2").integer(), 1);  // NOT (1 = 2)
  ASSERT_TRUE(db_->Exec("CREATE TABLE u (a INTEGER)").ok());
  ASSERT_TRUE(db_->Exec("INSERT INTO u VALUES (1), (2)").ok());
  auto v = db_->QueryScalar("SELECT COUNT(*) FROM u WHERE NOT a = 1");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->integer(), 1);
}

TEST_F(ExprFeaturesTest, CastOverflowIsAnError) {
  // Overflow semantics match the parser's for literals: out-of-range is
  // an error status, never a silent saturation.
  EXPECT_FALSE(
      db_->QueryScalar("SELECT CAST('99999999999999999999' AS INTEGER)")
          .ok());
  EXPECT_FALSE(
      db_->QueryScalar("SELECT CAST('-99999999999999999999' AS INTEGER)")
          .ok());
  // REAL -> INTEGER beyond int64: the old strtoll path never saw these;
  // the cast must reject them instead of invoking UB.
  EXPECT_FALSE(db_->QueryScalar("SELECT CAST(1.0e300 AS INTEGER)").ok());
  EXPECT_FALSE(db_->QueryScalar("SELECT CAST(-1.0e300 AS INTEGER)").ok());
  EXPECT_FALSE(db_->QueryScalar("SELECT CAST('1e999' AS REAL)").ok());
  // In range still works, including the extremes.
  EXPECT_EQ(Scalar("CAST('9223372036854775807' AS INTEGER)").integer(),
            9223372036854775807LL);
  EXPECT_EQ(Scalar("CAST('-9223372036854775808' AS INTEGER)").integer(),
            INT64_MIN);
  // Text underflow to REAL rounds to zero (representable, not an error).
  EXPECT_DOUBLE_EQ(Scalar("CAST('1e-999' AS REAL)").real(), 0.0);
  // Non-numeric text still casts to 0 / 0.0 (SQLite-compatible).
  EXPECT_EQ(Scalar("CAST('junk' AS INTEGER)").integer(), 0);
  EXPECT_DOUBLE_EQ(Scalar("CAST('junk' AS REAL)").real(), 0.0);
}

TEST_F(ExprFeaturesTest, CastRoundTrips) {
  // INT -> TEXT -> INT and REAL -> TEXT -> REAL survive unchanged.
  EXPECT_EQ(Scalar("CAST(CAST(-42 AS TEXT) AS INTEGER)").integer(), -42);
  EXPECT_EQ(
      Scalar("CAST(CAST(9223372036854775807 AS TEXT) AS INTEGER)")
          .integer(),
      9223372036854775807LL);
  EXPECT_DOUBLE_EQ(Scalar("CAST(CAST(2.5 AS TEXT) AS REAL)").real(), 2.5);
  // INT <-> REAL for values exactly representable both ways.
  EXPECT_EQ(Scalar("CAST(CAST(1048576 AS REAL) AS INTEGER)").integer(),
            1048576);
  EXPECT_DOUBLE_EQ(Scalar("CAST(CAST(3.0 AS INTEGER) AS REAL)").real(),
                   3.0);
}

}  // namespace
}  // namespace rql::sql

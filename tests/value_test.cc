#include "sql/value.h"

#include <gtest/gtest.h>

namespace rql::sql {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Integer(42).integer(), 42);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).real(), 2.5);
  EXPECT_EQ(Value::Text("hi").text(), "hi");
  EXPECT_TRUE(Value::Integer(1).is_numeric());
  EXPECT_TRUE(Value::Real(1.0).is_numeric());
  EXPECT_FALSE(Value::Text("1").is_numeric());
}

TEST(ValueTest, AsDoubleAndAsInt) {
  EXPECT_DOUBLE_EQ(Value::Integer(3).AsDouble(), 3.0);
  EXPECT_EQ(Value::Real(3.9).AsInt(), 3);
  EXPECT_EQ(Value::Null().AsInt(), 0);
}

TEST(CompareValuesTest, TypeOrdering) {
  // NULL < numeric < text.
  EXPECT_LT(CompareValues(Value::Null(), Value::Integer(-100)), 0);
  EXPECT_LT(CompareValues(Value::Integer(1000000), Value::Text("")), 0);
  EXPECT_EQ(CompareValues(Value::Null(), Value::Null()), 0);
}

TEST(CompareValuesTest, CrossNumericComparison) {
  EXPECT_EQ(CompareValues(Value::Integer(2), Value::Real(2.0)), 0);
  EXPECT_LT(CompareValues(Value::Integer(2), Value::Real(2.5)), 0);
  EXPECT_GT(CompareValues(Value::Real(3.1), Value::Integer(3)), 0);
}

TEST(CompareValuesTest, TextComparison) {
  EXPECT_LT(CompareValues(Value::Text("abc"), Value::Text("abd")), 0);
  EXPECT_EQ(CompareValues(Value::Text("x"), Value::Text("x")), 0);
  // ISO dates compare correctly as text.
  EXPECT_LT(CompareValues(Value::Text("1995-03-01"),
                          Value::Text("1995-03-15")), 0);
}

TEST(CompareRowsTest, LexicographicWithPrefix) {
  Row a = {Value::Integer(1), Value::Integer(2)};
  Row b = {Value::Integer(1), Value::Integer(3)};
  Row prefix = {Value::Integer(1)};
  EXPECT_LT(CompareRows(a, b), 0);
  EXPECT_LT(CompareRows(prefix, a), 0);  // shorter prefix sorts first
  EXPECT_EQ(CompareRows(a, a), 0);
}

TEST(RowCodecTest, RoundTripAllTypes) {
  Row row = {Value::Null(), Value::Integer(-7), Value::Real(3.25),
             Value::Text("hello world")};
  auto decoded = DecodeRow(EncodeRow(row));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 4u);
  EXPECT_TRUE((*decoded)[0].is_null());
  EXPECT_EQ((*decoded)[1].integer(), -7);
  EXPECT_DOUBLE_EQ((*decoded)[2].real(), 3.25);
  EXPECT_EQ((*decoded)[3].text(), "hello world");
}

TEST(RowCodecTest, EmptyRowAndEmptyText) {
  auto empty = DecodeRow(EncodeRow(Row{}));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  auto text = DecodeRow(EncodeRow({Value::Text("")}));
  ASSERT_TRUE(text.ok());
  EXPECT_EQ((*text)[0].text(), "");
}

TEST(RowCodecTest, CorruptInputsRejected) {
  EXPECT_FALSE(DecodeRow("").ok());
  EXPECT_FALSE(DecodeRow("abc").ok());
  std::string good = EncodeRow({Value::Integer(1)});
  EXPECT_FALSE(DecodeRow(good.substr(0, good.size() - 1)).ok());
  EXPECT_FALSE(DecodeRow(good + "x").ok());
}

class RowCodecPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RowCodecPropertyTest, RandomRowsRoundTrip) {
  // Deterministic pseudo-random rows keyed by the parameter.
  uint64_t seed = static_cast<uint64_t>(GetParam()) * 2654435761u + 1;
  auto next = [&seed]() {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    return seed >> 33;
  };
  Row row;
  size_t n = next() % 8;
  for (size_t i = 0; i < n; ++i) {
    switch (next() % 4) {
      case 0: row.push_back(Value::Null()); break;
      case 1: row.push_back(Value::Integer(static_cast<int64_t>(next()) -
                                           (1 << 30))); break;
      case 2: row.push_back(Value::Real(static_cast<double>(next()) / 7.0));
        break;
      default: row.push_back(Value::Text(std::string(next() % 50, 'x')));
        break;
    }
  }
  auto decoded = DecodeRow(EncodeRow(row));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    EXPECT_EQ(CompareValues((*decoded)[i], row[i]), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RowCodecPropertyTest, ::testing::Range(0, 50));

}  // namespace
}  // namespace rql::sql

// Tests for the observability layer: the retro::MetricsRegistry itself,
// the component RegisterMetrics gauges, and the engine-level guarantee
// that a registry delta taken around one run equals the legacy
// RqlRunStats counters for every mechanism.

#include "retro/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "rql/rql.h"

namespace rql {
namespace {

using retro::MetricsRegistry;

TEST(MetricsRegistryTest, CounterAddAndSnapshot) {
  MetricsRegistry reg;
  MetricsRegistry::Counter* c = reg.GetCounter("x.count");
  c->Increment();
  c->Add(41);
  EXPECT_EQ(c->value(), 42);
  // Same name returns the same counter.
  EXPECT_EQ(reg.GetCounter("x.count"), c);
  MetricsRegistry::Snapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.counter("x.count"), 42);
  // Unknown names read as zero, not as an error.
  EXPECT_EQ(snap.counter("never.seen"), 0);
}

TEST(MetricsRegistryTest, DeltaSubtractsCounters) {
  MetricsRegistry reg;
  reg.GetCounter("a")->Add(10);
  MetricsRegistry::Snapshot before = reg.TakeSnapshot();
  reg.GetCounter("a")->Add(5);
  reg.GetCounter("b")->Add(7);  // born after `before`
  MetricsRegistry::Snapshot delta = reg.TakeSnapshot().DeltaFrom(before);
  EXPECT_EQ(delta.counter("a"), 5);
  EXPECT_EQ(delta.counter("b"), 7);
}

TEST(MetricsRegistryTest, GaugesReadLiveState) {
  MetricsRegistry reg;
  int64_t live = 3;
  reg.SetGauge("g.live", [&live] { return live; });
  EXPECT_EQ(reg.TakeSnapshot().gauges.at("g.live"), 3);
  live = 9;
  EXPECT_EQ(reg.TakeSnapshot().gauges.at("g.live"), 9);
  reg.RemoveGauge("g.live");
  EXPECT_EQ(reg.TakeSnapshot().gauges.count("g.live"), 0u);
}

TEST(MetricsRegistryTest, RemoveGaugesWithPrefix) {
  MetricsRegistry reg;
  reg.SetGauge("pool.a", [] { return int64_t{1}; });
  reg.SetGauge("pool.b", [] { return int64_t{2}; });
  reg.SetGauge("other", [] { return int64_t{3}; });
  reg.RemoveGaugesWithPrefix("pool.");
  MetricsRegistry::Snapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges.count("other"), 1u);
}

TEST(MetricsRegistryTest, HistogramBucketsAndDelta) {
  MetricsRegistry reg;
  MetricsRegistry::Histogram* h = reg.GetHistogram("lat");
  h->ObserveUs(0);
  h->ObserveUs(1);
  h->ObserveUs(1000);
  MetricsRegistry::Snapshot snap = reg.TakeSnapshot();
  const auto& hs = snap.histograms.at("lat");
  EXPECT_EQ(hs.count, 3);
  EXPECT_EQ(hs.sum_us, 1001);
  int64_t bucket_total = 0;
  for (int64_t b : hs.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, 3);

  MetricsRegistry::Snapshot before = snap;
  h->ObserveUs(5);
  auto delta = reg.TakeSnapshot().DeltaFrom(before).histograms.at("lat");
  EXPECT_EQ(delta.count, 1);
  EXPECT_EQ(delta.sum_us, 5);
}

TEST(MetricsRegistryTest, ResetClearsCountersAndHistograms) {
  MetricsRegistry reg;
  reg.GetCounter("c")->Add(4);
  reg.GetHistogram("h")->ObserveUs(10);
  reg.Reset();
  MetricsRegistry::Snapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.counter("c"), 0);
  EXPECT_EQ(snap.histograms.at("h").count, 0);
}

TEST(MetricsRegistryTest, DefaultIsAProcessSingleton) {
  EXPECT_EQ(MetricsRegistry::Default(), MetricsRegistry::Default());
}

TEST(MetricsRegistryTest, ConcurrentAddsAreLossless) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // GetCounter under contention must also be safe, not just Add.
      for (int i = 0; i < kAdds; ++i) {
        reg.GetCounter("shared")->Increment();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.TakeSnapshot().counter("shared"), kThreads * kAdds);
}

// --- component gauges ------------------------------------------------------

TEST(ComponentMetricsTest, SnapshotStoreGaugesTrackLiveState) {
  storage::InMemoryEnv env;
  auto data = sql::Database::Open(&env, "data");
  auto meta = sql::Database::Open(&env, "meta");
  ASSERT_TRUE(data.ok() && meta.ok());
  RqlEngine engine(data->get(), meta->get());
  ASSERT_TRUE(engine.EnsureSnapIds().ok());
  ASSERT_TRUE((*data)->Exec("CREATE TABLE t (a INTEGER)").ok());
  ASSERT_TRUE((*data)->Exec("INSERT INTO t VALUES (1)").ok());
  ASSERT_TRUE(engine.CommitWithSnapshot("2020-01-01 00:00:00").ok());

  // The registry outlives nothing here: it is scoped inside the store's
  // lifetime, and the handle deregisters the gauges when it goes out of
  // scope.
  MetricsRegistry reg;
  ScopedCleanup gauges = (*data)->store()->RegisterMetrics(&reg);
  MetricsRegistry::Snapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.gauges.at("snapshot_store.latest_snapshot"), 1);
  EXPECT_EQ(snap.gauges.at("snapshot_store.earliest_snapshot"), 1);
  EXPECT_EQ(snap.gauges.count("snapshot_store.cache.hits"), 1u);

  // Overwriting t's page archives the prior version, which the pagelog
  // gauges observe live (no republish step).
  ASSERT_TRUE((*data)->Exec("BEGIN; INSERT INTO t VALUES (2)").ok());
  ASSERT_TRUE(engine.CommitWithSnapshot("2020-01-02 00:00:00").ok());
  snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.gauges.at("snapshot_store.latest_snapshot"), 2);
  EXPECT_GE(snap.gauges.at("snapshot_store.pagelog.records"), 1);
}

// --- engine-level equality: registry delta == legacy RqlRunStats -----------

class EngineMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto data = sql::Database::Open(&env_, "data");
    auto meta = sql::Database::Open(&env_, "meta");
    ASSERT_TRUE(data.ok() && meta.ok());
    data_ = std::move(*data);
    meta_ = std::move(*meta);
    engine_ = std::make_unique<RqlEngine>(data_.get(), meta_.get());
    ASSERT_TRUE(engine_->EnsureSnapIds().ok());
    ASSERT_TRUE(
        data_->Exec("CREATE TABLE items (id INTEGER, st TEXT)").ok());
    int id = 0;
    for (int s = 1; s <= 4; ++s) {
      std::string sql = "BEGIN";
      for (int r = 0; r < 3; ++r) {
        ++id;
        sql += "; INSERT INTO items VALUES (" + std::to_string(id) + ", '" +
               (id % 2 == 0 ? "O" : "F") + "')";
      }
      ASSERT_TRUE(data_->Exec(sql).ok());
      ASSERT_TRUE(engine_
                      ->CommitWithSnapshot("2020-02-0" + std::to_string(s) +
                                           " 00:00:00")
                      .ok());
    }
    engine_->mutable_options()->metrics = &registry_;
  }

  // Asserts the delta taken around `run` equals the legacy struct, field
  // by published field.
  void ExpectDeltaMatchesStats(const std::function<Status()>& run) {
    MetricsRegistry::Snapshot before = registry_.TakeSnapshot();
    Status s = run();
    ASSERT_TRUE(s.ok()) << s.ToString();
    MetricsRegistry::Snapshot delta =
        registry_.TakeSnapshot().DeltaFrom(before);
    const RqlRunStats& stats = engine_->last_run_stats();

    EXPECT_EQ(delta.counter("rql.runs"), 1);
    EXPECT_EQ(delta.counter("rql.iterations"),
              static_cast<int64_t>(stats.iterations.size()));
    EXPECT_EQ(delta.counter("rql.iterations_skipped"),
              stats.iterations_skipped);
    EXPECT_EQ(delta.counter("rql.qq_parse_count"), stats.qq_parse_count);
    EXPECT_EQ(delta.counter("rql.total_us"), stats.TotalUs());
    EXPECT_EQ(delta.counter("rql.extra_agg_us"), stats.extra_agg_us);
    EXPECT_EQ(delta.counter("rql.shared_page_hits"),
              stats.shared_page_hits);
    EXPECT_EQ(delta.counter("rql.coalesced_loads"), stats.coalesced_loads);
    EXPECT_EQ(delta.counter("rql.archive_read_retries"),
              stats.archive_read_retries);

    int64_t io = 0, spt = 0, query = 0, index = 0, udf = 0, rows = 0;
    int64_t maplog = 0, plog = 0, db = 0, hits = 0, plans = 0, batched = 0;
    int64_t vbatches = 0, vrows = 0, vfallback = 0;
    for (const RqlIterationStats& it : stats.iterations) {
      io += it.io_us;
      spt += it.spt_build_us;
      query += it.query_eval_us;
      index += it.index_create_us;
      udf += it.udf_us;
      rows += it.qq_rows;
      maplog += it.maplog_pages;
      plog += it.pagelog_pages;
      db += it.db_pages;
      hits += it.cache_hits;
      plans += it.plan_cache_hits;
      batched += it.batched_pagelog_reads;
      vbatches += it.batches_scanned;
      vrows += it.batch_rows;
      vfallback += it.batch_fallback_rows;
    }
    EXPECT_EQ(delta.counter("rql.io_us"), io);
    EXPECT_EQ(delta.counter("rql.spt_build_us"), spt);
    EXPECT_EQ(delta.counter("rql.query_eval_us"), query);
    EXPECT_EQ(delta.counter("rql.index_create_us"), index);
    EXPECT_EQ(delta.counter("rql.udf_us"), udf);
    EXPECT_EQ(delta.counter("rql.qq_rows"), rows);
    EXPECT_EQ(delta.counter("rql.maplog_pages"), maplog);
    EXPECT_EQ(delta.counter("rql.pagelog_pages"), plog);
    EXPECT_EQ(delta.counter("rql.db_pages"), db);
    EXPECT_EQ(delta.counter("rql.cache_hits"), hits);
    EXPECT_EQ(delta.counter("rql.plan_cache_hits"), plans);
    EXPECT_EQ(delta.counter("rql.batched_pagelog_reads"), batched);
    EXPECT_EQ(delta.counter("rql.batches_scanned"), vbatches);
    EXPECT_EQ(delta.counter("rql.batch_rows"), vrows);
    EXPECT_EQ(delta.counter("rql.batch_fallback_rows"), vfallback);

    const auto& hist = delta.histograms.at("rql.iteration_us");
    EXPECT_EQ(hist.count, static_cast<int64_t>(stats.iterations.size()));
    EXPECT_EQ(delta.histograms.at("rql.run_us").count, 1);
  }

  storage::InMemoryEnv env_;
  MetricsRegistry registry_;
  std::unique_ptr<sql::Database> data_;
  std::unique_ptr<sql::Database> meta_;
  std::unique_ptr<RqlEngine> engine_;
};

TEST_F(EngineMetricsTest, CollateDataDeltaMatchesLegacyStats) {
  ExpectDeltaMatchesStats([this] {
    return engine_->CollateData(
        "SELECT snap_id FROM SnapIds",
        "SELECT id, current_snapshot() AS sid FROM items WHERE st = 'O'",
        "M1");
  });
}

TEST_F(EngineMetricsTest, AggregateDataInVariableDeltaMatchesLegacyStats) {
  ExpectDeltaMatchesStats([this] {
    return engine_->AggregateDataInVariable(
        "SELECT snap_id FROM SnapIds",
        "SELECT COUNT(*) AS c FROM items WHERE st = 'O'", "M2", "avg");
  });
}

TEST_F(EngineMetricsTest, AggregateDataInTableDeltaMatchesLegacyStats) {
  ExpectDeltaMatchesStats([this] {
    return engine_->AggregateDataInTable(
        "SELECT snap_id FROM SnapIds", "SELECT id, st FROM items", "M3",
        "(st,max)");
  });
}

TEST_F(EngineMetricsTest, CollateDataIntoIntervalsDeltaMatchesLegacyStats) {
  ExpectDeltaMatchesStats([this] {
    return engine_->CollateDataIntoIntervals(
        "SELECT snap_id FROM SnapIds", "SELECT id, st FROM items", "M4");
  });
}

TEST_F(EngineMetricsTest, FlagsOnDeltaStillMatchesLegacyStats) {
  RqlOptions* opts = engine_->mutable_options();
  opts->incremental_spt = true;
  opts->reuse_qq_plan = true;
  opts->batch_pagelog_reads = true;
  opts->reuse_decoded_pages = true;
  opts->skip_unchanged_iterations = true;
  opts->batch_execution = true;
  ExpectDeltaMatchesStats([this] {
    return engine_->CollateData(
        "SELECT snap_id FROM SnapIds",
        "SELECT id, current_snapshot() AS sid FROM items WHERE st = 'O'",
        "M5");
  });
}

TEST_F(EngineMetricsTest, BatchExecutionDeltaMatchesLegacyStats) {
  engine_->mutable_options()->batch_execution = true;
  ExpectDeltaMatchesStats([this] {
    return engine_->CollateData("SELECT snap_id FROM SnapIds",
                                "SELECT id, st FROM items WHERE st = 'O'",
                                "M8");
  });
  // The plain single-table Qq actually took the batch path.
  int64_t batches = 0;
  for (const RqlIterationStats& it : engine_->last_run_stats().iterations) {
    batches += it.batches_scanned;
  }
  EXPECT_GT(batches, 0);
}

TEST_F(EngineMetricsTest, ParallelDeltaMatchesLegacyStats) {
  engine_->mutable_options()->parallel_workers = 4;
  ExpectDeltaMatchesStats([this] {
    return engine_->CollateData(
        "SELECT snap_id FROM SnapIds",
        "SELECT id, current_snapshot() AS sid FROM items WHERE st = 'O'",
        "M6");
  });
}

TEST_F(EngineMetricsTest, ValidationFailurePublishesNothing) {
  MetricsRegistry::Snapshot before = registry_.TakeSnapshot();
  Status s = engine_->CollateData("SELECT snap_id FROM SnapIds",
                                  "SELECT FROM WHERE", "M7");
  EXPECT_FALSE(s.ok());
  // A run rejected by up-front validation leaves the registry untouched,
  // matching the cleared legacy struct (both read as all-zero).
  MetricsRegistry::Snapshot delta =
      registry_.TakeSnapshot().DeltaFrom(before);
  EXPECT_EQ(delta.counter("rql.runs"), 0);
  EXPECT_EQ(delta.counter("rql.iterations"), 0);
  EXPECT_TRUE(engine_->last_run_stats().iterations.empty());
}

TEST_F(EngineMetricsTest, DefaultRegistryUsedWhenUnset) {
  engine_->mutable_options()->metrics = nullptr;
  EXPECT_EQ(engine_->metrics(), MetricsRegistry::Default());
  MetricsRegistry::Snapshot before = engine_->metrics()->TakeSnapshot();
  ASSERT_TRUE(engine_
                  ->CollateData("SELECT snap_id FROM SnapIds",
                                "SELECT id FROM items", "M8")
                  .ok());
  MetricsRegistry::Snapshot delta =
      engine_->metrics()->TakeSnapshot().DeltaFrom(before);
  EXPECT_EQ(delta.counter("rql.runs"), 1);
}

}  // namespace
}  // namespace rql

// SharedScanCache lifetime and concurrency edges: segmented-LRU budget
// accounting, eviction while a reader still holds the entry, per-version
// single-flight decode (publish, abandon, and truncation-stale paths),
// conservative TruncateHistory invalidation with a run in progress, the
// scoped metrics handle, and a TSan-able stress mix of concurrent
// attached engines validated against a sequential flag-off oracle.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "retro/metrics.h"
#include "rql/rql.h"
#include "sql/shared_scan_cache.h"
#include "storage/env.h"
#include "storage/page.h"

namespace rql {
namespace {

using sql::Row;
using sql::ScanCache;
using sql::SharedScanCache;
using sql::Value;

/// A decoded page whose EstimateBytes charge is kPageSize + overhead,
/// tagged with `tag` so tests can tell entries apart.
std::shared_ptr<const ScanCache::DecodedPage> MakePage(int64_t tag) {
  auto page = std::make_shared<ScanCache::DecodedPage>();
  page->rows.push_back(Row{Value::Integer(tag)});
  return page;
}

int64_t PageTag(const ScanCache::DecodedPage& page) {
  return page.rows.at(0).at(0).AsInt();
}

TEST(SharedScanCacheTest, SingleFlightProtocolSingleThread) {
  SharedScanCache cache;
  ScanCache::AcquireResult r = cache.Acquire(7);
  EXPECT_EQ(r.page, nullptr);
  EXPECT_TRUE(r.claimed);

  auto published = cache.Insert(7, MakePage(70));
  EXPECT_EQ(PageTag(*published), 70);
  EXPECT_EQ(cache.size(), 1u);

  r = cache.Acquire(7);
  ASSERT_NE(r.page, nullptr);
  EXPECT_EQ(PageTag(*r.page), 70);
  EXPECT_FALSE(r.claimed);
  EXPECT_FALSE(r.coalesced);
  EXPECT_EQ(PageTag(*cache.Lookup(7)), 70);
  EXPECT_EQ(cache.Lookup(8), nullptr);

  SharedScanCache::Stats s = cache.GetStats();
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.inserts, 1);
  EXPECT_EQ(s.shared_hits, 2);  // Acquire hit + Lookup hit
  EXPECT_EQ(s.coalesced_decodes, 0);
}

TEST(SharedScanCacheTest, BudgetEvictsProbationFirstAndHeldEntriesSurvive) {
  // One shard for deterministic LRU; room for roughly two resident pages.
  SharedScanCache::Options opt;
  opt.shards = 1;
  opt.max_bytes = 2 * storage::kPageSize + storage::kPageSize / 2;
  SharedScanCache cache(opt);

  ASSERT_TRUE(cache.Acquire(1).claimed);
  auto held = cache.Insert(1, MakePage(10));
  ASSERT_TRUE(cache.Acquire(2).claimed);
  cache.Insert(2, MakePage(20));

  // Re-hit version 1: promoted to the protected segment, so the later
  // over-budget insert must evict probationary version 2, not it.
  ASSERT_NE(cache.Lookup(1), nullptr);

  ASSERT_TRUE(cache.Acquire(3).claimed);
  cache.Insert(3, MakePage(30));

  SharedScanCache::Stats s = cache.GetStats();
  EXPECT_GE(s.evictions, 1);
  EXPECT_NE(cache.Lookup(1), nullptr) << "protected entry was evicted";
  EXPECT_EQ(cache.Lookup(2), nullptr) << "probationary entry survived";

  // The evicted version is decodable again (a fresh claim), and the
  // shared_ptr held across the eviction still reads its rows.
  EXPECT_TRUE(cache.Acquire(2).claimed);
  cache.AbandonDecode(2);
  EXPECT_EQ(PageTag(*held), 10);

  // Byte accounting stays exact across insert/evict cycles.
  uint64_t expect_bytes = 0;
  for (uint64_t v : {1, 3}) {
    auto page = cache.Lookup(v);
    ASSERT_NE(page, nullptr);
    expect_bytes += SharedScanCache::EstimateBytes(*page);
  }
  EXPECT_EQ(cache.bytes(), expect_bytes);
}

TEST(SharedScanCacheTest, CoalescedWaiterIsServedThePublishedPage) {
  SharedScanCache cache;
  ASSERT_TRUE(cache.Acquire(5).claimed);

  std::atomic<bool> waiter_started{false};
  ScanCache::AcquireResult waited;
  std::thread waiter([&] {
    waiter_started.store(true);
    waited = cache.Acquire(5);
  });
  while (!waiter_started.load()) std::this_thread::yield();
  // Give the waiter a beat to block on the in-flight decode.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  cache.Insert(5, MakePage(50));
  waiter.join();

  ASSERT_NE(waited.page, nullptr);
  EXPECT_EQ(PageTag(*waited.page), 50);
  EXPECT_FALSE(waited.claimed);
  EXPECT_TRUE(waited.coalesced);
  EXPECT_EQ(cache.GetStats().coalesced_decodes, 1);
}

TEST(SharedScanCacheTest, AbandonedDecodeWakesWaitersEmptyHanded) {
  SharedScanCache cache;
  ASSERT_TRUE(cache.Acquire(9).claimed);

  ScanCache::AcquireResult waited;
  std::thread waiter([&] { waited = cache.Acquire(9); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  cache.AbandonDecode(9);
  waiter.join();

  // The waiter falls back to an uncached read: no page, no claim.
  EXPECT_EQ(waited.page, nullptr);
  EXPECT_FALSE(waited.claimed);
  EXPECT_FALSE(waited.coalesced);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.GetStats().abandoned_decodes, 1);

  // The version is claimable again afterwards.
  EXPECT_TRUE(cache.Acquire(9).claimed);
  cache.Insert(9, MakePage(90));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SharedScanCacheTest, ClearDuringInflightDecodeSuppressesPublish) {
  SharedScanCache cache;
  ASSERT_TRUE(cache.Acquire(3).claimed);
  cache.Clear();  // truncation path: the in-flight claim is now stale

  // A late arrival must neither wait on the stale claim nor re-claim the
  // suspect version: plain uncached read.
  ScanCache::AcquireResult late = cache.Acquire(3);
  EXPECT_EQ(late.page, nullptr);
  EXPECT_FALSE(late.claimed);

  // The claimant completes, but nothing is published under the (possibly
  // rebased) key.
  cache.Insert(3, MakePage(33));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup(3), nullptr);
}

TEST(SharedScanCacheTest, TruncateInvalidationIsConservative) {
  SharedScanCache cache;
  for (uint64_t v = 1; v <= 8; ++v) {
    ASSERT_TRUE(cache.Acquire(v).claimed);
    cache.Insert(v, MakePage(static_cast<int64_t>(v)));
  }
  auto held = cache.Lookup(2);
  ASSERT_NE(held, nullptr);

  // keep_from only removes versions below it at the store level, but the
  // cache must drop everything: truncation rebases every offset.
  cache.OnTruncateHistory(4);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.GetStats().truncate_invalidations, 1);
  EXPECT_EQ(PageTag(*held), 2) << "held entry must outlive invalidation";
}

TEST(SharedScanCacheTest, MetricsHandleRegistersAndDeregisters) {
  retro::MetricsRegistry registry;
  SharedScanCache cache;
  ASSERT_TRUE(cache.Acquire(1).claimed);
  cache.Insert(1, MakePage(1));
  {
    ScopedCleanup gauges = cache.RegisterMetrics(&registry, "scan");
    retro::MetricsRegistry::Snapshot snap = registry.TakeSnapshot();
    EXPECT_EQ(snap.gauges.at("scan.entries"), 1);
    EXPECT_GT(snap.gauges.at("scan.bytes"), 0);
    EXPECT_EQ(snap.gauges.at("scan.misses"), 1);
  }
  // The scoped handle removed the gauges: no dangling reads of a cache
  // that may be destroyed before the registry.
  EXPECT_EQ(registry.TakeSnapshot().gauges.count("scan.entries"), 0u);
}

TEST(SharedScanCacheTest, RandomizedConcurrentProtocolMix) {
  // TSan fodder: claims, publishes, abandons, lookups and clears race on
  // a small version space and a small budget (so eviction runs too).
  SharedScanCache::Options opt;
  opt.shards = 2;
  opt.max_bytes = 8 * storage::kPageSize;
  SharedScanCache cache(opt);

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  constexpr uint64_t kVersions = 16;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      uint64_t state = 0x9e3779b97f4a7c15ull * (t + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        uint64_t version = (state >> 33) % kVersions;
        switch ((state >> 20) % 8) {
          case 0:
            cache.Clear();
            break;
          case 1:
            (void)cache.Lookup(version);
            break;
          default: {
            ScanCache::AcquireResult r = cache.Acquire(version);
            if (r.page != nullptr) {
              EXPECT_EQ(PageTag(*r.page), static_cast<int64_t>(version));
            } else if (r.claimed) {
              if ((state >> 10) % 4 == 0) {
                cache.AbandonDecode(version);
              } else {
                cache.Insert(version, MakePage(static_cast<int64_t>(version)));
              }
            }
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  SharedScanCache::Stats s = cache.GetStats();
  EXPECT_GT(s.misses, 0);
  EXPECT_GT(s.inserts, 0);
  EXPECT_LE(s.entries, kVersions);
}

// --- engine-level lifetime edges -------------------------------------------

struct EngineFixture {
  std::unique_ptr<storage::InMemoryEnv> env =
      std::make_unique<storage::InMemoryEnv>();
  std::unique_ptr<sql::Database> data;
  std::unique_ptr<sql::Database> meta;
  std::unique_ptr<RqlEngine> engine;
  retro::SnapshotId last_snap = retro::kNoSnapshot;
};

/// A small multi-page history: `t` spans several heap pages and a slice
/// of it is updated before every snapshot, so consecutive snapshots
/// share most page versions (the shape the shared cache serves).
EngineFixture MakeHistory(int snapshots, RqlOptions options = RqlOptions()) {
  EngineFixture f;
  auto data = sql::Database::Open(f.env.get(), "data");
  auto meta = sql::Database::Open(f.env.get(), "meta");
  EXPECT_TRUE(data.ok() && meta.ok());
  f.data = std::move(*data);
  f.meta = std::move(*meta);
  f.engine =
      std::make_unique<RqlEngine>(f.data.get(), f.meta.get(), options);
  EXPECT_TRUE(f.engine->EnsureSnapIds().ok());
  EXPECT_TRUE(
      f.data->Exec("CREATE TABLE t (k INTEGER, v INTEGER)").ok());
  for (int k = 0; k < 600; ++k) {
    EXPECT_TRUE(f.data
                    ->AppendRow("t", {Value::Integer(k),
                                      Value::Integer(k * 10)})
                    .ok());
  }
  for (int s = 0; s < snapshots; ++s) {
    EXPECT_TRUE(f.data->Exec("BEGIN").ok());
    EXPECT_TRUE(f.data
                    ->Exec("UPDATE t SET v = v + 1 WHERE k % 37 = " +
                           std::to_string(s % 37))
                    .ok());
    auto snap = f.engine->CommitWithSnapshot("ts-" + std::to_string(s));
    EXPECT_TRUE(snap.ok());
    if (snap.ok()) f.last_snap = *snap;
  }
  return f;
}

std::string QsRange(retro::SnapshotId first, retro::SnapshotId last) {
  return "SELECT snap_id FROM SnapIds WHERE snap_id >= " +
         std::to_string(first) + " AND snap_id <= " + std::to_string(last) +
         " ORDER BY snap_id";
}

std::vector<std::string> CollectRows(sql::Database* meta,
                                     const std::string& table) {
  auto rows = meta->Query("SELECT * FROM " + table);
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  std::vector<std::string> out;
  if (rows.ok()) {
    for (const Row& row : rows->rows) out.push_back(sql::EncodeRow(row));
  }
  return out;
}

constexpr char kQq[] = "SELECT k, v FROM t WHERE v % 3 = 0";

TEST(SharedScanCacheEngineTest, TruncateHistoryInvalidatesMidLifeCache) {
  SharedScanCache cache;
  RqlOptions options;
  options.shared_scan_cache = &cache;
  EngineFixture f = MakeHistory(12, options);

  const std::string qs_all = QsRange(1, f.last_snap);
  ASSERT_TRUE(f.engine->CollateData(qs_all, kQq, "Out").ok());
  ASSERT_GT(cache.size(), 0u) << "run should have populated the cache";
  std::vector<std::string> before = CollectRows(f.meta.get(), "Out");
  ASSERT_FALSE(before.empty());

  // Retention drops snapshots below 7 and rewrites the Pagelog; the
  // engine's hook must clear the store-scoped cache outright.
  const retro::SnapshotId keep_from = 7;
  ASSERT_TRUE(f.engine->TruncateHistory(keep_from).ok());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.GetStats().truncate_invalidations, 1);

  // Post-truncation runs decode fresh offsets and must agree with a
  // cache-less engine reading the same (attached) store.
  ASSERT_TRUE(f.engine->CollateData(QsRange(keep_from, f.last_snap), kQq,
                                    "OutAfter")
                  .ok());
  auto oracle_data = sql::Database::Attach(f.data->store());
  ASSERT_TRUE(oracle_data.ok());
  auto oracle_env = std::make_unique<storage::InMemoryEnv>();
  auto oracle_meta = sql::Database::Open(oracle_env.get(), "meta");
  ASSERT_TRUE(oracle_meta.ok());
  RqlEngine oracle(oracle_data->get(), oracle_meta->get());
  ASSERT_TRUE(oracle.EnsureSnapIds().ok());
  for (retro::SnapshotId s = keep_from; s <= f.last_snap; ++s) {
    ASSERT_TRUE((*oracle_meta)
                    ->AppendRow("SnapIds",
                                {Value::Integer(s), Value::Text("ts"),
                                 Value::Text("")})
                    .ok());
  }
  ASSERT_TRUE(
      oracle.CollateData(QsRange(keep_from, f.last_snap), kQq, "Oracle")
          .ok());
  EXPECT_EQ(CollectRows(f.meta.get(), "OutAfter"),
            CollectRows(oracle_meta->get(), "Oracle"));
}

TEST(SharedScanCacheEngineTest, ConcurrentAttachedRunsMatchSequentialOracle) {
  EngineFixture f = MakeHistory(16);
  const std::string qs = QsRange(1, f.last_snap);

  // Sequential flag-off oracle on the owning engine.
  ASSERT_TRUE(f.engine->CollateData(qs, kQq, "Oracle").ok());
  const std::vector<std::string> oracle = CollectRows(f.meta.get(), "Oracle");
  ASSERT_FALSE(oracle.empty());

  SharedScanCache cache;
  constexpr int kClients = 4;
  struct Client {
    std::unique_ptr<storage::InMemoryEnv> env;
    std::unique_ptr<sql::Database> meta;
    std::unique_ptr<sql::Database> data;
    std::unique_ptr<RqlEngine> engine;
    Status status = Status::OK();
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t coalesced = 0;
  };
  std::vector<Client> clients(kClients);
  for (Client& c : clients) {
    c.env = std::make_unique<storage::InMemoryEnv>();
    auto meta = sql::Database::Open(c.env.get(), "meta");
    auto data = sql::Database::Attach(f.data->store());
    ASSERT_TRUE(meta.ok() && data.ok());
    c.meta = std::move(*meta);
    c.data = std::move(*data);
    RqlOptions options;
    options.shared_scan_cache = &cache;
    options.cold_cache_per_run = false;
    c.engine =
        std::make_unique<RqlEngine>(c.data.get(), c.meta.get(), options);
    ASSERT_TRUE(c.engine->EnsureSnapIds().ok());
    for (retro::SnapshotId s = 1; s <= f.last_snap; ++s) {
      ASSERT_TRUE(c.meta
                      ->AppendRow("SnapIds",
                                  {Value::Integer(s), Value::Text("ts"),
                                   Value::Text("")})
                      .ok());
    }
  }

  // Two rounds: the first mixes cold decodes with cross-run hits, the
  // second must run almost entirely out of the warm shared cache.
  for (int round = 0; round < 2; ++round) {
    std::vector<std::thread> threads;
    for (Client& c : clients) {
      threads.emplace_back([&c, &qs] {
        c.status = c.engine->CollateData(qs, kQq, "Out");
        if (!c.status.ok()) return;
        const RqlRunStats& stats = c.engine->last_run_stats();
        c.hits += stats.shared_page_hits;
        c.misses += stats.scan_cache_misses;
        c.coalesced += stats.coalesced_decodes;
      });
    }
    for (std::thread& t : threads) t.join();
    for (int i = 0; i < kClients; ++i) {
      ASSERT_TRUE(clients[i].status.ok())
          << "round " << round << ": " << clients[i].status.ToString();
      EXPECT_EQ(CollectRows(clients[i].meta.get(), "Out"), oracle)
          << "client " << i << " diverged in round " << round;
    }
  }

  // Per-iteration attribution is exact under concurrency: the clients'
  // harvested counters must sum to the cache's own totals (the default
  // budget is far above this working set, so nothing was evicted and
  // re-decoded invisibly).
  SharedScanCache::Stats s = cache.GetStats();
  EXPECT_EQ(s.evictions, 0);
  int64_t hits = 0, misses = 0, coalesced = 0;
  for (const Client& c : clients) {
    hits += c.hits;
    misses += c.misses;
    coalesced += c.coalesced;
  }
  EXPECT_EQ(hits, s.shared_hits);
  EXPECT_EQ(misses, s.misses);
  EXPECT_EQ(coalesced, s.coalesced_decodes);
  EXPECT_GT(hits, 0);
  EXPECT_EQ(s.inserts, static_cast<int64_t>(s.entries));
}

}  // namespace
}  // namespace rql

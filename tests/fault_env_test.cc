#include "storage/fault_env.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "storage/env.h"

namespace rql::storage {
namespace {

std::string ReadAll(Env* env, const std::string& name) {
  auto file = env->OpenFile(name);
  EXPECT_TRUE(file.ok()) << file.status().ToString();
  if (!file.ok()) return {};
  std::string out((*file)->Size(), '\0');
  if (!out.empty()) {
    EXPECT_TRUE((*file)->Read(0, out.size(), out.data()).ok());
  }
  return out;
}

TEST(GlobMatchTest, Basics) {
  EXPECT_TRUE(FailpointRegistry::GlobMatch("*", "anything"));
  EXPECT_TRUE(FailpointRegistry::GlobMatch("*", ""));
  EXPECT_TRUE(FailpointRegistry::GlobMatch("a.db", "a.db"));
  EXPECT_FALSE(FailpointRegistry::GlobMatch("a.db", "a.pagelog"));
  EXPECT_TRUE(FailpointRegistry::GlobMatch("*.pagelog", "tort.pagelog"));
  EXPECT_FALSE(FailpointRegistry::GlobMatch("*.pagelog", "tort.maplog"));
  EXPECT_TRUE(FailpointRegistry::GlobMatch("t?rt.db", "tort.db"));
  EXPECT_FALSE(FailpointRegistry::GlobMatch("t?rt.db", "toort.db"));
  EXPECT_TRUE(FailpointRegistry::GlobMatch("a*b*c", "a-x-b-y-c"));
  EXPECT_FALSE(FailpointRegistry::GlobMatch("a*b*c", "a-x-c"));
}

TEST(FaultInjectionEnvTest, NoFaultsIsTransparent) {
  InMemoryEnv plain;
  InMemoryEnv base;
  FaultInjectionEnv env(&base);

  for (Env* e : {static_cast<Env*>(&plain), static_cast<Env*>(&env)}) {
    auto f = e->OpenFile("t.bin");
    ASSERT_TRUE(f.ok());
    uint64_t off = 0;
    ASSERT_TRUE((*f)->Append(5, "hello", &off).ok());
    EXPECT_EQ(off, 0u);
    ASSERT_TRUE((*f)->Write(5, 6, " world").ok());
    ASSERT_TRUE((*f)->Sync().ok());
    ASSERT_TRUE((*f)->Truncate(8).ok());
  }
  EXPECT_EQ(ReadAll(&plain, "t.bin"), ReadAll(&env, "t.bin"));
  EXPECT_EQ(ReadAll(&env, "t.bin"), "hello wo");
  EXPECT_TRUE(env.FileExists("t.bin"));
  EXPECT_FALSE(env.crashed());
  EXPECT_EQ(env.stats().faults_fired, 0u);
  EXPECT_EQ(env.stats().appends, 1u);
  EXPECT_EQ(env.stats().writes, 1u);
  EXPECT_EQ(env.stats().syncs, 1u);
  EXPECT_EQ(env.stats().truncates, 1u);
  EXPECT_GE(env.stats().reads, 1u);
}

TEST(FaultInjectionEnvTest, FiresOnNthOperationThenDisarms) {
  InMemoryEnv base;
  FaultInjectionEnv env(&base);
  FaultSpec spec;
  spec.op = FaultOp::kWrite;
  spec.kind = FaultKind::kIoError;
  spec.after = 2;  // fire on the third write
  env.Arm(spec);

  auto f = env.OpenFile("t.bin");
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE((*f)->Write(0, 1, "a").ok());
  EXPECT_TRUE((*f)->Write(1, 1, "b").ok());
  Status third = (*f)->Write(2, 1, "c");
  EXPECT_FALSE(third.ok());
  EXPECT_EQ(third.code(), StatusCode::kIoError) << third.ToString();
  // Non-sticky: the failpoint disarmed after firing.
  EXPECT_TRUE((*f)->Write(2, 1, "c").ok());
  EXPECT_EQ(env.stats().faults_fired, 1u);
  EXPECT_EQ(ReadAll(&env, "t.bin"), "abc");
}

TEST(FaultInjectionEnvTest, StickyKeepsFailing) {
  InMemoryEnv base;
  FaultInjectionEnv env(&base);
  FaultSpec spec;
  spec.op = FaultOp::kSync;
  spec.sticky = true;
  env.Arm(spec);

  auto f = env.OpenFile("t.bin");
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE((*f)->Sync().ok());
  EXPECT_FALSE((*f)->Sync().ok());
  EXPECT_FALSE((*f)->Sync().ok());
  EXPECT_EQ(env.stats().faults_fired, 3u);
  env.DisarmAll();
  EXPECT_TRUE((*f)->Sync().ok());
}

TEST(FaultInjectionEnvTest, GlobScopesFaultsToMatchingFiles) {
  InMemoryEnv base;
  FaultInjectionEnv env(&base);
  FaultSpec spec;
  spec.op = FaultOp::kAppend;
  spec.glob = "*.pagelog";
  spec.sticky = true;
  env.Arm(spec);

  auto log = env.OpenFile("t.pagelog");
  auto db = env.OpenFile("t.db");
  ASSERT_TRUE(log.ok() && db.ok());
  uint64_t off = 0;
  EXPECT_FALSE((*log)->Append(3, "xyz", &off).ok());
  EXPECT_TRUE((*db)->Append(3, "xyz", &off).ok());
}

TEST(FaultInjectionEnvTest, TornWriteLeavesPartialPrefix) {
  InMemoryEnv base;
  FaultInjectionEnv env(&base, /*seed=*/7);
  FaultSpec spec;
  spec.op = FaultOp::kAppend;
  spec.kind = FaultKind::kTornWrite;
  env.Arm(spec);

  auto f = env.OpenFile("t.log");
  ASSERT_TRUE(f.ok());
  uint64_t off = 0;
  Status s = (*f)->Append(26, "abcdefghijklmnopqrstuvwxyz", &off);
  EXPECT_FALSE(s.ok());
  // A strict prefix of the payload reached the base file.
  std::string content = ReadAll(&base, "t.log");
  EXPECT_LT(content.size(), 26u);
  EXPECT_EQ(content, std::string("abcdefghijklmnopqrstuvwxyz")
                         .substr(0, content.size()));
}

TEST(FaultInjectionEnvTest, ShortReadFails) {
  InMemoryEnv base;
  FaultInjectionEnv env(&base);
  auto f = env.OpenFile("t.bin");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Write(0, 5, "hello").ok());

  FaultSpec spec;
  spec.op = FaultOp::kRead;
  spec.kind = FaultKind::kShortRead;
  env.Arm(spec);
  char buf[5];
  Status s = (*f)->Read(0, 5, buf);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  // Disarmed after firing; the data itself is intact.
  EXPECT_TRUE((*f)->Read(0, 5, buf).ok());
  EXPECT_EQ(std::string(buf, 5), "hello");
}

TEST(FaultInjectionEnvTest, CrashLosesUnsyncedDataUntilRecovery) {
  InMemoryEnv base;
  FaultInjectionEnv env(&base);
  auto f = env.OpenFile("t.bin");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Write(0, 6, "stable").ok());
  ASSERT_TRUE((*f)->Sync().ok());
  ASSERT_TRUE((*f)->Write(6, 9, " volatile").ok());

  FaultSpec spec;
  spec.op = FaultOp::kSync;
  spec.kind = FaultKind::kCrash;
  env.Arm(spec);
  EXPECT_FALSE((*f)->Sync().ok());
  EXPECT_TRUE(env.crashed());

  // Every operation fails while the env is "dead".
  char c;
  EXPECT_FALSE((*f)->Read(0, 1, &c).ok());
  EXPECT_FALSE((*f)->Write(0, 1, "x").ok());
  EXPECT_FALSE(env.OpenFile("other.bin").ok());

  ASSERT_TRUE(env.RecoverToSyncedState().ok());
  EXPECT_FALSE(env.crashed());
  // Only the synced prefix survived the crash.
  EXPECT_EQ(ReadAll(&env, "t.bin"), "stable");
}

TEST(FaultInjectionEnvTest, RecoveryWithoutCrashDropsUnsynced) {
  InMemoryEnv base;
  FaultInjectionEnv env(&base);
  auto f = env.OpenFile("t.bin");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Write(0, 3, "abc").ok());
  ASSERT_TRUE((*f)->Sync().ok());
  ASSERT_TRUE((*f)->Write(3, 3, "def").ok());
  ASSERT_TRUE(env.RecoverToSyncedState().ok());
  EXPECT_EQ(ReadAll(&env, "t.bin"), "abc");
}

TEST(FaultInjectionEnvTest, InitialContentCountsAsSynced) {
  InMemoryEnv base;
  {
    auto f = base.OpenFile("pre.bin");
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Write(0, 8, "preexist").ok());
  }
  FaultInjectionEnv env(&base);
  auto f = env.OpenFile("pre.bin");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Write(8, 4, "more").ok());
  FaultSpec spec;
  spec.op = FaultOp::kSync;
  spec.kind = FaultKind::kCrash;
  env.Arm(spec);
  EXPECT_FALSE((*f)->Sync().ok());
  ASSERT_TRUE(env.RecoverToSyncedState().ok());
  EXPECT_EQ(ReadAll(&env, "pre.bin"), "preexist");
}

TEST(FaultInjectionEnvTest, DeleteIsDurable) {
  InMemoryEnv base;
  FaultInjectionEnv env(&base);
  {
    auto f = env.OpenFile("gone.bin");
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Write(0, 1, "x").ok());
    ASSERT_TRUE((*f)->Sync().ok());
  }
  ASSERT_TRUE(env.DeleteFile("gone.bin").ok());
  EXPECT_FALSE(env.FileExists("gone.bin"));
  ASSERT_TRUE(env.RecoverToSyncedState().ok());
  EXPECT_FALSE(env.FileExists("gone.bin"));
}

}  // namespace
}  // namespace rql::storage

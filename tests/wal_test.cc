// Crash-recovery tests for the WAL-backed page store and the stack above
// it. A fault-injecting Env cuts write service after a budget of write
// operations (optionally tearing the final write in half); cloning the
// in-memory state at that instant models the disk image a crash leaves
// behind. For every crash point, reopening must yield exactly the state
// of the last successful commit.

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "sql/database.h"
#include "storage/page_store.h"

namespace rql::storage {
namespace {

/// Env wrapper that fails all writes after `budget` write operations,
/// tearing the unlucky write in half. Reads keep working (a crashed
/// machine's disk is still readable after reboot).
class FaultyEnv : public Env {
 public:
  explicit FaultyEnv(InMemoryEnv* base, int64_t budget)
      : base_(base), budget_(budget) {}

  Result<std::unique_ptr<File>> OpenFile(const std::string& name) override {
    RQL_ASSIGN_OR_RETURN(std::unique_ptr<File> file, base_->OpenFile(name));
    return std::unique_ptr<File>(new FaultyFile(this, std::move(file)));
  }
  Status DeleteFile(const std::string& name) override {
    return base_->DeleteFile(name);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return base_->RenameFile(from, to);
  }
  bool FileExists(const std::string& name) const override {
    return base_->FileExists(name);
  }

  bool crashed() const { return budget_ < 0; }

 private:
  class FaultyFile : public File {
   public:
    FaultyFile(FaultyEnv* env, std::unique_ptr<File> base)
        : env_(env), base_(std::move(base)) {}

    Status Read(uint64_t offset, uint64_t n, char* buf) const override {
      return base_->Read(offset, n, buf);
    }
    Status Write(uint64_t offset, uint64_t n, const char* buf) override {
      return env_->Charge([&](bool tear) {
        return base_->Write(offset, tear ? n / 2 : n, buf);
      });
    }
    Status Append(uint64_t n, const char* buf, uint64_t* out) override {
      return env_->Charge([&](bool tear) {
        uint64_t ignored;
        return base_->Append(tear ? n / 2 : n, buf, tear ? &ignored : out);
      });
    }
    uint64_t Size() const override { return base_->Size(); }
    Status Truncate(uint64_t size) override {
      return env_->Charge([&](bool tear) {
        return tear ? Status::OK() : base_->Truncate(size);
      });
    }
    Status Sync() override { return base_->Sync(); }

   private:
    FaultyEnv* env_;
    std::unique_ptr<File> base_;
  };

  template <typename Fn>
  Status Charge(Fn&& op) {
    if (budget_ < 0) return Status::IoError("crashed");
    if (budget_ == 0) {
      budget_ = -1;
      (void)op(/*tear=*/true);  // the torn, final write
      return Status::IoError("crashed");
    }
    --budget_;
    return op(/*tear=*/false);
  }

  InMemoryEnv* base_;
  int64_t budget_;
};

TEST(WalTest, CommittedBatchSurvivesReopen) {
  InMemoryEnv env;
  auto store = PageStore::Open(&env, "t.db");
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->BeginBatch().ok());
  auto a = (*store)->AllocatePage();
  auto b = (*store)->AllocatePage();
  ASSERT_TRUE(a.ok() && b.ok());
  Page page;
  page.Zero();
  page.WriteU64(0, 0xA11CE);
  ASSERT_TRUE((*store)->WritePage(*a, page).ok());
  ASSERT_TRUE((*store)->CommitBatch().ok());
  store->reset();

  auto reopened = PageStore::Open(&env, "t.db");
  ASSERT_TRUE(reopened.ok());
  Page read;
  ASSERT_TRUE((*reopened)->ReadPage(*a, &read).ok());
  EXPECT_EQ(read.ReadU64(0), 0xA11CEull);
  EXPECT_EQ((*reopened)->allocated_pages(), 2u);
}

TEST(WalTest, RolledBackBatchLeavesNoTrace) {
  InMemoryEnv env;
  auto store = PageStore::Open(&env, "t.db");
  ASSERT_TRUE(store.ok());
  auto keep = (*store)->AllocatePage();
  ASSERT_TRUE(keep.ok());

  ASSERT_TRUE((*store)->BeginBatch().ok());
  auto gone = (*store)->AllocatePage();
  ASSERT_TRUE(gone.ok());
  Page page;
  page.Zero();
  page.WriteU64(0, 7);
  ASSERT_TRUE((*store)->WritePage(*keep, page).ok());
  ASSERT_TRUE((*store)->RollbackBatch().ok());

  EXPECT_EQ((*store)->allocated_pages(), 1u);
  Page read;
  ASSERT_TRUE((*store)->ReadPage(*keep, &read).ok());
  EXPECT_EQ(read.ReadU64(0), 0u);
  // Dropped state stays dropped across reopen.
  store->reset();
  auto reopened = PageStore::Open(&env, "t.db");
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->allocated_pages(), 1u);
}

TEST(WalTest, ReadsInsideBatchSeeBufferedWrites) {
  InMemoryEnv env;
  auto store = PageStore::Open(&env, "t.db");
  ASSERT_TRUE(store.ok());
  auto id = (*store)->AllocatePage();
  ASSERT_TRUE((*store)->BeginBatch().ok());
  Page page;
  page.Zero();
  page.WriteU64(0, 99);
  ASSERT_TRUE((*store)->WritePage(*id, page).ok());
  Page read;
  ASSERT_TRUE((*store)->ReadPage(*id, &read).ok());
  EXPECT_EQ(read.ReadU64(0), 99u);
  ASSERT_TRUE((*store)->CommitBatch().ok());
}

// The core crash-atomicity property: run a deterministic page workload of
// N batches; for every write-op crash point, the reopened store holds
// exactly the state after some prefix of committed batches.
TEST(WalTest, EveryCrashPointRecoversToACommittedPrefix) {
  // Reference run (no faults) to learn the total write-op count and the
  // state after each commit.
  auto run_workload = [](Env* env,
                         std::vector<std::map<PageId, uint64_t>>* states) {
    auto opened = PageStore::Open(env, "t.db");
    if (!opened.ok()) return opened.status();
    std::unique_ptr<PageStore> store = std::move(*opened);
    Random rng(42);
    std::map<PageId, uint64_t> model;
    std::vector<PageId> pages;
    uint64_t tag = 1;
    if (states != nullptr) states->push_back(model);  // empty prefix
    for (int batch = 0; batch < 12; ++batch) {
      RQL_RETURN_IF_ERROR(store->BeginBatch());
      for (int op = 0; op < 4; ++op) {
        if (pages.empty() || rng.Bernoulli(0.4)) {
          RQL_ASSIGN_OR_RETURN(PageId id, store->AllocatePage());
          pages.push_back(id);
          model[id] = 0;
        }
        PageId id = pages[rng.Uniform(pages.size())];
        Page page;
        page.Zero();
        page.WriteU64(0, tag);
        RQL_RETURN_IF_ERROR(store->WritePage(id, page));
        model[id] = tag++;
      }
      RQL_RETURN_IF_ERROR(store->CommitBatch());
      if (states != nullptr) states->push_back(model);
    }
    return Status::OK();
  };

  InMemoryEnv clean;
  std::vector<std::map<PageId, uint64_t>> states;
  ASSERT_TRUE(run_workload(&clean, &states).ok());

  // Count total write ops by running against a counting env with a huge
  // budget... simpler: just probe increasing budgets until a run survives.
  for (int64_t budget = 0; budget < 2000; budget += 7) {
    InMemoryEnv base;
    FaultyEnv faulty(&base, budget);
    Status s = run_workload(&faulty, nullptr);
    if (s.ok()) break;  // this and larger budgets complete fully

    // Crash happened: reopen from the surviving bytes.
    auto image = base.CloneState();
    auto reopened = PageStore::Open(image.get(), "t.db");
    ASSERT_TRUE(reopened.ok())
        << "budget " << budget << ": " << reopened.status().ToString();

    // The recovered state must equal one of the committed prefixes.
    std::map<PageId, uint64_t> recovered;
    for (PageId id = 1; id < (*reopened)->page_count(); ++id) {
      Page page;
      Status rs = (*reopened)->ReadPage(id, &page);
      ASSERT_TRUE(rs.ok()) << rs.ToString();
      recovered[id] = page.ReadU64(0);
    }
    bool matched = false;
    for (const auto& state : states) {
      if (state.size() > recovered.size()) continue;
      bool equal = true;
      for (const auto& [id, tag] : state) {
        auto it = recovered.find(id);
        // Free-list pages hold link words; only compare modelled pages.
        if (it == recovered.end() || it->second != tag) {
          equal = false;
          break;
        }
      }
      // Pages beyond the prefix must be absent from the model but may
      // exist as free pages; require the allocated count to match.
      if (equal && (*reopened)->allocated_pages() == state.size()) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched) << "budget " << budget
                         << " recovered to a non-prefix state";
  }
}

// Crash-atomicity through the whole stack: SQL transactions with
// snapshots, crashed at various points, must recover to a state where
// every previously-declared snapshot still reads correctly.
TEST(WalTest, SqlStackSurvivesCrashes) {
  auto run = [](Env* env, int* committed_rounds) -> Status {
    RQL_ASSIGN_OR_RETURN(std::unique_ptr<sql::Database> db,
                         sql::Database::Open(env, "crash"));
    RQL_RETURN_IF_ERROR(
        db->Exec("CREATE TABLE IF NOT EXISTS t (round INTEGER, v TEXT)"));
    for (int round = 1; round <= 10; ++round) {
      RQL_RETURN_IF_ERROR(db->Exec(
          "BEGIN; INSERT INTO t VALUES (" + std::to_string(round) +
          ", 'payload-" + std::to_string(round) + "'); "
          "COMMIT WITH SNAPSHOT;"));
      if (committed_rounds != nullptr) *committed_rounds = round;
    }
    return Status::OK();
  };

  for (int64_t budget = 50; budget < 1200; budget += 73) {
    InMemoryEnv base;
    FaultyEnv faulty(&base, budget);
    int committed = 0;
    Status s = run(&faulty, &committed);
    if (s.ok()) break;

    auto image = base.CloneState();
    auto db = sql::Database::Open(image.get(), "crash");
    ASSERT_TRUE(db.ok()) << "budget " << budget << ": "
                         << db.status().ToString();
    // The table exists iff the CREATE committed; each declared snapshot
    // must hold exactly the rows of its round prefix.
    retro::SnapshotId snaps = (*db)->store()->latest_snapshot();
    for (retro::SnapshotId snap = 1; snap <= snaps; ++snap) {
      auto count = (*db)->QueryScalar("SELECT AS OF " +
                                      std::to_string(snap) +
                                      " COUNT(*) FROM t");
      ASSERT_TRUE(count.ok()) << count.status().ToString();
      EXPECT_EQ(count->integer(), static_cast<int64_t>(snap))
          << "budget " << budget << " snapshot " << snap;
    }
    // The current state equals some committed prefix (>= declared snaps).
    if ((*db)->catalog()->data().FindTable("t") != nullptr) {
      auto count = (*db)->QueryScalar("SELECT COUNT(*) FROM t");
      ASSERT_TRUE(count.ok());
      EXPECT_GE(count->integer(), static_cast<int64_t>(snaps));
      // committed+1 is legal: the crash can land after the WAL commit
      // point (data durable) but before the round's Exec returned.
      EXPECT_LE(count->integer(), static_cast<int64_t>(committed) + 1);
    }
  }
}

}  // namespace
}  // namespace rql::storage

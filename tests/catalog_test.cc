// Unit tests for the page-resident catalog: DDL round trips, persistence,
// index resolution, and as-of catalog loading from snapshot views.

#include "sql/catalog.h"

#include <gtest/gtest.h>

#include "retro/snapshot_store.h"

namespace rql::sql {
namespace {

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto store = retro::SnapshotStore::Open(&env_, "t");
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    storage::PageId root = storage::kInvalidPageId;
    auto catalog = Catalog::Open(store_.get(), &root);
    ASSERT_TRUE(catalog.ok());
    catalog_ = std::move(*catalog);
    root_ = root;
  }

  TableSchema SchemaOf(const std::string& text) {
    auto schema = TableSchema::Deserialize(text);
    EXPECT_TRUE(schema.ok());
    return *schema;
  }

  storage::InMemoryEnv env_;
  std::unique_ptr<retro::SnapshotStore> store_;
  std::unique_ptr<Catalog> catalog_;
  storage::PageId root_ = storage::kInvalidPageId;
};

TEST_F(CatalogTest, CreateAndFindTable) {
  ASSERT_TRUE(
      catalog_->CreateTable("users", SchemaOf("id INTEGER,name TEXT")).ok());
  const TableInfo* info = catalog_->data().FindTable("users");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->schema.size(), 2u);
  EXPECT_NE(info->root, storage::kInvalidPageId);
  // Case-insensitive lookup.
  EXPECT_NE(catalog_->data().FindTable("USERS"), nullptr);
  EXPECT_EQ(catalog_->data().FindTable("missing"), nullptr);
}

TEST_F(CatalogTest, DuplicateTableRejected) {
  ASSERT_TRUE(catalog_->CreateTable("t", SchemaOf("a INTEGER")).ok());
  Status s = catalog_->CreateTable("T", SchemaOf("a INTEGER"));
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST_F(CatalogTest, EmptySchemaRejected) {
  EXPECT_FALSE(catalog_->CreateTable("t", TableSchema{}).ok());
}

TEST_F(CatalogTest, IndexResolution) {
  ASSERT_TRUE(catalog_
                  ->CreateTable("t", SchemaOf("a INTEGER,b TEXT,c REAL"))
                  .ok());
  auto index = catalog_->CreateIndex("t_bc", "t", {"b", "c"});
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->column_idx, (std::vector<int>{1, 2}));

  EXPECT_NE(catalog_->data().IndexOnColumn("t", "b"), nullptr);
  EXPECT_EQ(catalog_->data().IndexOnColumn("t", "c"), nullptr);  // not first
  EXPECT_EQ(catalog_->data().TableIndexes("t").size(), 1u);

  // Unknown column / table rejected.
  EXPECT_FALSE(catalog_->CreateIndex("bad", "t", {"zz"}).ok());
  EXPECT_FALSE(catalog_->CreateIndex("bad", "missing", {"a"}).ok());
}

TEST_F(CatalogTest, DropTableDropsItsIndexes) {
  ASSERT_TRUE(catalog_->CreateTable("t", SchemaOf("a INTEGER")).ok());
  ASSERT_TRUE(catalog_->CreateIndex("t_a", "t", {"a"}).ok());
  uint32_t before = store_->page_store()->allocated_pages();
  ASSERT_GT(before, 1u);
  ASSERT_TRUE(catalog_->DropTable("t").ok());
  EXPECT_EQ(catalog_->data().FindTable("t"), nullptr);
  EXPECT_EQ(catalog_->data().FindIndex("t_a"), nullptr);
  // Only the catalog's own page(s) remain allocated.
  EXPECT_LT(store_->page_store()->allocated_pages(), before);
}

TEST_F(CatalogTest, PersistsAcrossReload) {
  ASSERT_TRUE(catalog_->CreateTable("t", SchemaOf("a INTEGER,b TEXT")).ok());
  ASSERT_TRUE(catalog_->CreateIndex("t_a", "t", {"a"}).ok());
  Catalog fresh(store_.get(), root_);
  ASSERT_TRUE(fresh.Reload().ok());
  ASSERT_NE(fresh.data().FindTable("t"), nullptr);
  const IndexInfo* index = fresh.data().FindIndex("t_a");
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->table, "t");
  EXPECT_EQ(index->column_idx, (std::vector<int>{0}));
}

TEST_F(CatalogTest, AsOfCatalogReflectsSnapshotSchema) {
  ASSERT_TRUE(catalog_->CreateTable("old_t", SchemaOf("a INTEGER")).ok());
  auto snap = store_->DeclareSnapshot();
  ASSERT_TRUE(snap.ok());
  ASSERT_TRUE(catalog_->DropTable("old_t").ok());
  ASSERT_TRUE(catalog_->CreateTable("new_t", SchemaOf("b TEXT")).ok());

  // Current catalog: only new_t.
  EXPECT_EQ(catalog_->data().FindTable("old_t"), nullptr);
  EXPECT_NE(catalog_->data().FindTable("new_t"), nullptr);

  // As-of catalog: only old_t.
  auto view = store_->OpenSnapshot(*snap);
  ASSERT_TRUE(view.ok());
  auto as_of = CatalogData::Load(view->get(), root_);
  ASSERT_TRUE(as_of.ok()) << as_of.status().ToString();
  EXPECT_NE(as_of->FindTable("old_t"), nullptr);
  EXPECT_EQ(as_of->FindTable("new_t"), nullptr);
}

TEST_F(CatalogTest, SchemaSerializationRoundTrip) {
  TableSchema schema = SchemaOf("a INTEGER,b TEXT,c REAL,d NULL");
  auto round = TableSchema::Deserialize(schema.Serialize());
  ASSERT_TRUE(round.ok());
  ASSERT_EQ(round->columns.size(), 4u);
  EXPECT_EQ(round->columns[0].type, ValueType::kInteger);
  EXPECT_EQ(round->columns[3].type, ValueType::kNull);
  EXPECT_EQ(round->FindColumn("B"), 1);
  EXPECT_EQ(round->FindColumn("zzz"), -1);
  EXPECT_FALSE(TableSchema::Deserialize("garbage").ok());
  EXPECT_FALSE(TableSchema::Deserialize("a BOGUS").ok());
}

}  // namespace
}  // namespace rql::sql

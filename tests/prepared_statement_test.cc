// Tests for prepared statements: '?' placeholders, binding, re-execution,
// and their use in DML hot paths.

#include <gtest/gtest.h>

#include "sql/database.h"

namespace rql::sql {
namespace {

class PreparedStatementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(&env_, "t");
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    ASSERT_TRUE(db_->Exec("CREATE TABLE t (a INTEGER, b TEXT)").ok());
  }

  storage::InMemoryEnv env_;
  std::unique_ptr<Database> db_;
};

TEST_F(PreparedStatementTest, InsertRepeatedly) {
  auto stmt = db_->Prepare("INSERT INTO t VALUES (?, ?)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ((*stmt)->parameter_count(), 2);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*stmt)->BindInt(1, i).ok());
    ASSERT_TRUE((*stmt)->BindText(2, "row-" + std::to_string(i)).ok());
    ASSERT_TRUE((*stmt)->Execute().ok());
  }
  auto count = db_->QueryScalar("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->integer(), 10);
  auto row7 = db_->QueryScalar("SELECT b FROM t WHERE a = 7");
  ASSERT_TRUE(row7.ok());
  EXPECT_EQ(row7->text(), "row-7");
}

TEST_F(PreparedStatementTest, SelectWithParameters) {
  ASSERT_TRUE(db_->Exec(
      "INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')").ok());
  auto stmt = db_->Prepare("SELECT b FROM t WHERE a >= ? AND a <= ?");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE((*stmt)->BindInt(1, 2).ok());
  ASSERT_TRUE((*stmt)->BindInt(2, 3).ok());
  std::vector<std::string> got;
  ASSERT_TRUE((*stmt)
                  ->Execute([&](const std::vector<std::string>&,
                                const Row& row) {
                    got.push_back(row[0].text());
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(got, (std::vector<std::string>{"y", "z"}));

  // Rebinding narrows the range; previous bindings persist otherwise.
  ASSERT_TRUE((*stmt)->BindInt(2, 2).ok());
  got.clear();
  ASSERT_TRUE((*stmt)
                  ->Execute([&](const std::vector<std::string>&,
                                const Row& row) {
                    got.push_back(row[0].text());
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(got, (std::vector<std::string>{"y"}));
}

TEST_F(PreparedStatementTest, UnboundParameterRejected) {
  auto stmt = db_->Prepare("SELECT ? + 1");
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE((*stmt)->Execute().ok());
  ASSERT_TRUE((*stmt)->BindInt(1, 41).ok());
  int64_t got = 0;
  ASSERT_TRUE((*stmt)
                  ->Execute([&](const std::vector<std::string>&,
                                const Row& row) {
                    got = row[0].integer();
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(got, 42);
}

TEST_F(PreparedStatementTest, BadBindIndexRejected) {
  auto stmt = db_->Prepare("SELECT ?");
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE((*stmt)->BindInt(0, 1).ok());
  EXPECT_FALSE((*stmt)->BindInt(2, 1).ok());
  EXPECT_TRUE((*stmt)->BindInt(1, 1).ok());
}

TEST_F(PreparedStatementTest, NullAndTypedBindings) {
  auto stmt = db_->Prepare("INSERT INTO t VALUES (?, ?)");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE((*stmt)->BindValue(1, Value::Null()).ok());
  ASSERT_TRUE((*stmt)->BindReal(2, 2.5).ok());  // dynamic typing: REAL in b
  ASSERT_TRUE((*stmt)->Execute().ok());
  auto r = db_->Query("SELECT a, b FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows[0][0].is_null());
  EXPECT_DOUBLE_EQ(r->rows[0][1].real(), 2.5);
}

TEST_F(PreparedStatementTest, ParameterizedDelete) {
  ASSERT_TRUE(db_->Exec(
      "INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')").ok());
  auto stmt = db_->Prepare("DELETE FROM t WHERE a = ?");
  ASSERT_TRUE(stmt.ok());
  for (int64_t key : {1, 3}) {
    ASSERT_TRUE((*stmt)->BindInt(1, key).ok());
    ASSERT_TRUE((*stmt)->Execute().ok());
  }
  auto rest = db_->QueryScalar("SELECT b FROM t");
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(rest->text(), "b");
}

TEST_F(PreparedStatementTest, ParametersInsideInList) {
  ASSERT_TRUE(db_->Exec(
      "INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')").ok());
  auto stmt = db_->Prepare(
      "SELECT COUNT(*) FROM t WHERE a IN (?, ?)");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE((*stmt)->BindInt(1, 1).ok());
  ASSERT_TRUE((*stmt)->BindInt(2, 3).ok());
  int64_t count = -1;
  ASSERT_TRUE((*stmt)
                  ->Execute([&](const std::vector<std::string>&,
                                const Row& row) {
                    count = row[0].integer();
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(count, 2);
}

TEST_F(PreparedStatementTest, MultiStatementRejected) {
  EXPECT_FALSE(db_->Prepare("SELECT 1; SELECT 2").ok());
}

// Declares a snapshot after inserting (a, b) and returns its id.
retro::SnapshotId InsertAndSnapshot(Database* db, int64_t a,
                                    const std::string& b) {
  EXPECT_TRUE(db->Exec("INSERT INTO t VALUES (" + std::to_string(a) + ", '" +
                       b + "')")
                  .ok());
  EXPECT_TRUE(db->Exec("BEGIN; COMMIT WITH SNAPSHOT;").ok());
  return db->last_declared_snapshot();
}

TEST_F(PreparedStatementTest, BindAsOfWithPlaceholder) {
  retro::SnapshotId s1 = InsertAndSnapshot(db_.get(), 1, "one");
  retro::SnapshotId s2 = InsertAndSnapshot(db_.get(), 2, "two");

  auto stmt = db_->Prepare("SELECT AS OF ? COUNT(*) FROM t");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  // The placeholder is unbound until BindAsOf (or BindInt) supplies it.
  EXPECT_FALSE((*stmt)->Execute().ok());

  auto count_as_of = [&](retro::SnapshotId snap) {
    EXPECT_TRUE((*stmt)->BindAsOf(snap).ok());
    int64_t count = -1;
    EXPECT_TRUE((*stmt)
                    ->Execute([&](const std::vector<std::string>&,
                                  const Row& row) {
                      count = row[0].integer();
                      return Status::OK();
                    })
                    .ok());
    return count;
  };
  EXPECT_EQ(count_as_of(s1), 1);
  EXPECT_EQ(count_as_of(s2), 2);
  EXPECT_EQ(count_as_of(s1), 1);  // rebinding backwards works too
}

TEST_F(PreparedStatementTest, BindAsOfWithoutClause) {
  // A plain SELECT (no AS OF in the text) can still be pointed at each
  // snapshot in turn: the RQL plan-reuse path for unannotated Qq.
  retro::SnapshotId s1 = InsertAndSnapshot(db_.get(), 1, "one");
  InsertAndSnapshot(db_.get(), 2, "two");

  auto stmt = db_->Prepare("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE((*stmt)->BindAsOf(s1).ok());
  int64_t count = -1;
  ASSERT_TRUE((*stmt)
                  ->Execute([&](const std::vector<std::string>&,
                                const Row& row) {
                    count = row[0].integer();
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(count, 1);
}

TEST_F(PreparedStatementTest, BindAsOfRequiresSelect) {
  auto stmt = db_->Prepare("INSERT INTO t VALUES (1, 'x')");
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE((*stmt)->BindAsOf(1).ok());
}

TEST_F(PreparedStatementTest, PlanCacheReusedAcrossExecutions) {
  // A join forces both a reorder decision and a transient index; repeated
  // executions of the prepared statement must hit the plan cache.
  ASSERT_TRUE(db_->Exec("CREATE TABLE u (a INTEGER, c TEXT)").ok());
  ASSERT_TRUE(db_->Exec(
      "INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')").ok());
  ASSERT_TRUE(db_->Exec(
      "INSERT INTO u VALUES (1, 'p'), (2, 'q'), (3, 'r')").ok());

  auto stmt = db_->Prepare(
      "SELECT t.b, u.c FROM t, u WHERE t.a = u.a ORDER BY t.a");
  ASSERT_TRUE(stmt.ok());
  std::vector<std::string> first, second;
  auto collect = [](std::vector<std::string>* out) {
    return [out](const std::vector<std::string>&, const Row& row) {
      out->push_back(row[0].text() + "/" + row[1].text());
      return Status::OK();
    };
  };
  ASSERT_TRUE((*stmt)->Execute(collect(&first)).ok());
  EXPECT_EQ((*stmt)->plan_cache_hits(), 0);
  ASSERT_TRUE((*stmt)->Execute(collect(&second)).ok());
  EXPECT_GT((*stmt)->plan_cache_hits(), 0);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace rql::sql

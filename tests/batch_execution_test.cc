// Property tests for vectorized batch execution: with
// RqlOptions::batch_execution on, every mechanism's result table must be
// byte-identical to the row-at-a-time run across the page-sharing /
// amortization flag matrix and worker counts, plus direct BatchIterator
// edge cases (empty pages, boundary selections, mid-scan cache eviction).

#include <gtest/gtest.h>

#include <functional>
#include <map>

#include "common/random.h"
#include "rql/aggregates.h"
#include "rql/rql.h"
#include "sql/heap_table.h"
#include "sql/scan_cache.h"
#include "storage/env.h"

namespace rql {
namespace {

using sql::Row;
using sql::Value;

struct Fixture {
  std::unique_ptr<storage::InMemoryEnv> env =
      std::make_unique<storage::InMemoryEnv>();
  std::unique_ptr<sql::Database> data;
  std::unique_ptr<sql::Database> meta;
  std::unique_ptr<RqlEngine> engine;
  std::vector<retro::SnapshotId> snaps;
};

/// The two-zone sparse history of rql_property_test, condensed: `live`
/// spans several heap pages (320 filler rows force the split), zone A
/// (items 0..items) changes every `live_period`-th snapshot, zone B
/// (items 50000..) every 2*`live_period`-th, and a `churn` side table
/// changes every snapshot. Post-load mutations are in-place UPDATEs and
/// DELETEs only, so unchanged pages keep their shared versions — the
/// shape where reuse_decoded_pages and skip_unchanged_iterations bite,
/// and where a batch borrows cached decoded pages zero-copy.
Fixture MakeSparseFixture(uint64_t seed, int snapshots, int items,
                          int live_period) {
  Fixture f;
  auto data = sql::Database::Open(f.env.get(), "data");
  auto meta = sql::Database::Open(f.env.get(), "meta");
  EXPECT_TRUE(data.ok() && meta.ok());
  f.data = std::move(*data);
  f.meta = std::move(*meta);
  f.engine = std::make_unique<RqlEngine>(f.data.get(), f.meta.get());
  EXPECT_TRUE(f.engine->EnsureSnapIds().ok());
  EXPECT_TRUE(
      f.data->Exec("CREATE TABLE live (item INTEGER, score INTEGER)").ok());
  EXPECT_TRUE(
      f.data->Exec("CREATE TABLE churn (k INTEGER, v INTEGER)").ok());

  Random rng(seed);
  std::map<int64_t, int64_t> current;
  for (int s = 0; s < snapshots; ++s) {
    EXPECT_TRUE(f.data->Exec("BEGIN").ok());
    EXPECT_TRUE(f.data
                    ->Exec("INSERT INTO churn VALUES (" + std::to_string(s) +
                           ", " + std::to_string(rng.Uniform(1000)) + ")")
                    .ok());
    if (s == 0) {
      for (int i = 0; i <= items; ++i) {
        int64_t score = i == 0 ? 5 : static_cast<int64_t>(rng.Uniform(100));
        EXPECT_TRUE(f.data
                        ->Exec("INSERT INTO live VALUES (" +
                               std::to_string(i) + ", " +
                               std::to_string(score) + ")")
                        .ok());
        current[i] = score;
      }
      for (int i = 0; i < 320; ++i) {
        EXPECT_TRUE(f.data
                        ->Exec("INSERT INTO live VALUES (" +
                               std::to_string(1000 + i) + ", 7)")
                        .ok());
        current[1000 + i] = 7;
      }
      for (int i = 0; i < items; ++i) {
        int64_t score = static_cast<int64_t>(rng.Uniform(100));
        EXPECT_TRUE(f.data
                        ->Exec("INSERT INTO live VALUES (" +
                               std::to_string(50000 + i) + ", " +
                               std::to_string(score) + ")")
                        .ok());
        current[50000 + i] = score;
      }
    } else {
      if (s % live_period == 0) {
        // Unconditional item-0 update: guarantees the iteration executes.
        int64_t score = static_cast<int64_t>(rng.Uniform(100));
        EXPECT_TRUE(f.data
                        ->Exec("UPDATE live SET score = " +
                               std::to_string(score) + " WHERE item = 0")
                        .ok());
        current[0] = score;
        int ops = static_cast<int>(rng.Uniform(3));
        for (int op = 0; op < ops; ++op) {
          int64_t item = 1 + static_cast<int64_t>(rng.Uniform(items));
          if (!current.count(item)) continue;
          if (rng.Uniform(4) == 0) {
            EXPECT_TRUE(f.data
                            ->Exec("DELETE FROM live WHERE item = " +
                                   std::to_string(item))
                            .ok());
            current.erase(item);
            continue;
          }
          score = static_cast<int64_t>(rng.Uniform(100));
          EXPECT_TRUE(f.data
                          ->Exec("UPDATE live SET score = " +
                                 std::to_string(score) +
                                 " WHERE item = " + std::to_string(item))
                          .ok());
          current[item] = score;
        }
      }
      if (s % (2 * live_period) == 0) {
        int64_t item = 50000 + static_cast<int64_t>(rng.Uniform(items));
        int64_t score = static_cast<int64_t>(rng.Uniform(100));
        EXPECT_TRUE(f.data
                        ->Exec("UPDATE live SET score = " +
                               std::to_string(score) +
                               " WHERE item = " + std::to_string(item))
                        .ok());
        current[item] = score;
      }
    }
    auto snap = f.engine->CommitWithSnapshot("t" + std::to_string(s));
    EXPECT_TRUE(snap.ok()) << snap.status().ToString();
    f.snaps.push_back(*snap);
  }
  return f;
}

class BatchExecutionTest : public ::testing::TestWithParam<int> {};

TEST_P(BatchExecutionTest, BatchPathByteIdenticalAcrossFlagMatrix) {
  // batch_execution is a pure optimization: for every mechanism, every
  // result table must be byte-identical between the row and batch paths
  // under every flag configuration and worker count. AggregateDataInVariable
  // uses the non-idempotent `sum` fold so a double- or under-counted batch
  // would be caught.
  Fixture f = MakeSparseFixture(GetParam() * 1000 + 211, 16, 8, 4);
  const std::string qs = "SELECT snap_id FROM SnapIds";

  auto dump = [&](const std::string& table) {
    auto rows = f.meta->Query("SELECT * FROM " + table);
    EXPECT_TRUE(rows.ok()) << table << ": " << rows.status().ToString();
    std::vector<std::string> out;
    for (const Row& row : rows->rows) out.push_back(sql::EncodeRow(row));
    return out;
  };

  struct Mech {
    const char* name;
    std::function<Status(const std::string&)> run;
  };
  const std::vector<Mech> mechs = {
      {"collate",
       [&](const std::string& t) {
         return f.engine->CollateData(
             qs, "SELECT item, score FROM live WHERE score < 90", t);
       }},
      {"aggvar",
       [&](const std::string& t) {
         return f.engine->AggregateDataInVariable(
             qs, "SELECT COUNT(*) AS c FROM live", t, "sum");
       }},
      {"aggtable",
       [&](const std::string& t) {
         return f.engine->AggregateDataInTable(
             qs, "SELECT item, score FROM live", t, "(score,max)");
       }},
      {"intervals",
       [&](const std::string& t) {
         return f.engine->CollateDataIntoIntervals(
             qs, "SELECT item FROM live", t);
       }},
  };

  // The property test's flag matrix, plus the flags-off config, crossed
  // with {row, batch} and {1, 4} workers below.
  struct Config {
    const char* name;
    bool reuse, skip, amort, cold_iter;
  };
  const Config kConfigs[] = {
      {"off", false, false, false, false},
      {"reuse", true, false, false, false},
      {"skip", false, true, false, false},
      {"both", true, true, false, false},
      {"both_amortized", true, true, true, false},
      {"reuse_cold_iter", true, false, false, true},
      {"amortized_only", false, false, true, false},
  };

  for (const Mech& m : mechs) {
    *f.engine->mutable_options() = RqlOptions{};
    f.data->store()->ClearSnapshotCache();
    std::string base_table = std::string("base_") + m.name;
    ASSERT_TRUE(m.run(base_table).ok()) << m.name;
    std::vector<std::string> baseline = dump(base_table);

    int variant = 0;
    for (const Config& c : kConfigs) {
      for (int workers : {1, 4}) {
        for (bool batch : {false, true}) {
          RqlOptions opts;
          opts.reuse_decoded_pages = c.reuse;
          opts.skip_unchanged_iterations = c.skip;
          opts.incremental_spt = c.amort;
          opts.reuse_qq_plan = c.amort;
          opts.batch_pagelog_reads = c.amort;
          opts.cold_cache_per_iteration = c.cold_iter;
          opts.parallel_workers = workers;
          opts.batch_execution = batch;
          *f.engine->mutable_options() = opts;
          f.data->store()->ClearSnapshotCache();
          std::string table = std::string(m.name) + "_v" +
                              std::to_string(variant++);
          std::string label = std::string(m.name) + "/" + c.name +
                              "/workers=" + std::to_string(workers) +
                              (batch ? "/batch" : "/row");
          Status s = m.run(table);
          if (batch && c.cold_iter) {
            // Satellite check: batch_execution + cold_cache_per_iteration
            // is rejected up front (the skip_unchanged precedent).
            EXPECT_TRUE(s.IsInvalidArgument()) << label << ": "
                                               << s.ToString();
            EXPECT_EQ(f.meta->catalog()->data().FindTable(table), nullptr)
                << label;
            continue;
          }
          if (c.cold_iter && workers > 1 && !s.ok()) {
            // Parallelizable mechanisms reject cold_iter + workers; the
            // order-dependent ones run sequentially and accept it.
            EXPECT_TRUE(s.IsInvalidArgument()) << label << ": "
                                               << s.ToString();
            continue;
          }
          ASSERT_TRUE(s.ok()) << label << ": " << s.ToString();
          EXPECT_EQ(dump(table), baseline) << label;

          int64_t batches = 0, batch_rows = 0;
          const RqlRunStats& stats = f.engine->last_run_stats();
          for (const RqlIterationStats& it : stats.iterations) {
            batches += it.batches_scanned;
            batch_rows += it.batch_rows;
          }
          if (batch) {
            // Every Qq above is a plain single-table scan, so at least
            // the executed (non-skipped) iterations must take the
            // batch path.
            EXPECT_GT(batches, 0) << label;
            EXPECT_GT(batch_rows, 0) << label;
          } else {
            EXPECT_EQ(batches, 0) << label;
            EXPECT_EQ(batch_rows, 0) << label;
          }
        }
      }
    }
  }
}

TEST(BatchOptionsTest, BatchIncompatibleWithColdCachePerIteration) {
  // The all-cold baseline measures the paper-faithful row pipeline; the
  // combination is rejected before the result table is touched.
  Fixture f = MakeSparseFixture(7, 6, 4, 2);
  f.engine->mutable_options()->batch_execution = true;
  f.engine->mutable_options()->cold_cache_per_iteration = true;
  Status s = f.engine->CollateData("SELECT snap_id FROM SnapIds",
                                   "SELECT item FROM live", "Result");
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_EQ(f.meta->catalog()->data().FindTable("Result"), nullptr);
}

/// Direct BatchIterator edge cases against the heap, current state
/// (unversioned pages, owned-frame path) and snapshots (pinned path).
class BatchIteratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto data = sql::Database::Open(&env_, "data");
    auto meta = sql::Database::Open(&env_, "meta");
    ASSERT_TRUE(data.ok() && meta.ok());
    data_ = std::move(*data);
    meta_ = std::move(*meta);
    engine_ = std::make_unique<RqlEngine>(data_.get(), meta_.get());
    ASSERT_TRUE(engine_->EnsureSnapIds().ok());
    ASSERT_TRUE(
        data_->Exec("CREATE TABLE t (id INTEGER, v INTEGER)").ok());
    // ~155 fixed-width rows per 4 KiB page: 400 rows span 3+ pages.
    std::string sql;
    for (int i = 0; i < 400; ++i) {
      sql += (i ? "; " : "") + std::string("INSERT INTO t VALUES (") +
             std::to_string(i) + ", " + std::to_string(i * 3) + ")";
    }
    ASSERT_TRUE(data_->Exec(sql).ok());
  }

  storage::PageId Root() {
    const sql::TableInfo* info = data_->catalog()->data().FindTable("t");
    EXPECT_NE(info, nullptr);
    return info->root;
  }

  /// Collects all (id, v) pairs a batch scan yields, asserting batches
  /// are never empty and selection vectors start as identity.
  std::vector<std::pair<int64_t, int64_t>> CollectBatches(
      storage::PageReader* reader, sql::ScanCache* cache,
      const std::function<void(int)>& per_batch = nullptr) {
    std::vector<std::pair<int64_t, int64_t>> out;
    int batch_index = 0;
    for (auto it = sql::HeapTable::ScanBatches(reader, Root(), cache);
         it.Valid(); it.Next()) {
      sql::RowBatch& b = it.batch();
      EXPECT_GT(b.size, 0u);  // empty pages never surface as batches
      EXPECT_TRUE(b.selection.empty());  // the consumer fills it
      for (uint32_t i = 0; i < b.size; ++i) {
        const Row& row = b.rows[i];
        out.emplace_back(row[0].integer(), row[1].integer());
      }
      if (per_batch) per_batch(batch_index);
      ++batch_index;
    }
    return out;
  }

  std::vector<std::pair<int64_t, int64_t>> CollectRows(
      storage::PageReader* reader) {
    std::vector<std::pair<int64_t, int64_t>> out;
    for (auto it = sql::HeapTable::Scan(reader, Root(), nullptr); it.Valid();
         it.Next()) {
      auto row = sql::DecodeRow(it.record());
      EXPECT_TRUE(row.ok());
      out.emplace_back((*row)[0].integer(), (*row)[1].integer());
    }
    return out;
  }

  storage::InMemoryEnv env_;
  std::unique_ptr<sql::Database> data_;
  std::unique_ptr<sql::Database> meta_;
  std::unique_ptr<RqlEngine> engine_;
};

TEST_F(BatchIteratorTest, MatchesRowScanOverCurrentState) {
  auto batched = CollectBatches(data_->store(), nullptr);
  auto rows = CollectRows(data_->store());
  EXPECT_EQ(batched, rows);
  EXPECT_EQ(batched.size(), 400u);
}

TEST_F(BatchIteratorTest, SkipsFullyDeletedPages) {
  // Emptying the first page(s) leaves all-dead slots; the batch iterator
  // must skip them without surfacing an empty batch.
  ASSERT_TRUE(data_->Exec("DELETE FROM t WHERE id < 160").ok());
  auto batched = CollectBatches(data_->store(), nullptr);
  auto rows = CollectRows(data_->store());
  EXPECT_EQ(batched, rows);
  EXPECT_EQ(batched.size(), 240u);
  EXPECT_EQ(batched.front().first, 160);

  // Degenerate case: every page empty, the scan yields nothing but stays OK.
  ASSERT_TRUE(data_->Exec("DELETE FROM t").ok());
  auto it = sql::HeapTable::ScanBatches(data_->store(), Root(), nullptr);
  EXPECT_FALSE(it.Valid());
  EXPECT_TRUE(it.status().ok());
}

TEST_F(BatchIteratorTest, BatchSurvivesMidScanCacheEviction) {
  // Snapshot pages are versioned, so the scan pins entries in the shared
  // ScanCache. Clearing the cache mid-scan must not invalidate the batch
  // in hand: it owns the decoded page via shared_ptr, so its (zero-copy)
  // values stay readable and iteration continues over the remaining pages.
  ASSERT_TRUE(data_->Exec("BEGIN").ok());
  ASSERT_TRUE(data_->Exec("UPDATE t SET v = v + 1 WHERE id = 0").ok());
  auto snap = engine_->CommitWithSnapshot("s1");
  ASSERT_TRUE(snap.ok());
  // A second snapshot so the first's pages are archived (versioned).
  ASSERT_TRUE(data_->Exec("BEGIN").ok());
  ASSERT_TRUE(data_->Exec("UPDATE t SET v = v + 1 WHERE id = 1").ok());
  ASSERT_TRUE(engine_->CommitWithSnapshot("s2").ok());

  auto view = data_->store()->OpenSnapshot(*snap);
  ASSERT_TRUE(view.ok());
  auto baseline = CollectRows(view->get());

  sql::ScanCache cache;
  auto evicting = CollectBatches(view->get(), &cache,
                                 [&](int batch_index) {
                                   if (batch_index == 0) cache.Clear();
                                 });
  EXPECT_EQ(evicting, baseline);

  // And with the cache cleared after every single batch.
  cache.Clear();
  auto always = CollectBatches(view->get(), &cache,
                               [&](int) { cache.Clear(); });
  EXPECT_EQ(always, baseline);
}

TEST_F(BatchIteratorTest, BoundarySelectionsMatchRowPath) {
  // Executor-level boundary cases: predicates that keep only the first
  // row, only the last row, a page-straddling band, or nothing at all
  // must produce identical results on the batch and row paths (the
  // empty-selection batches exercise the skip-without-consume path).
  ASSERT_TRUE(data_->Exec("BEGIN").ok());
  ASSERT_TRUE(data_->Exec("UPDATE t SET v = v WHERE id = 0").ok());
  auto snap = engine_->CommitWithSnapshot("s1");
  ASSERT_TRUE(snap.ok());
  ASSERT_TRUE(data_->Exec("BEGIN").ok());
  ASSERT_TRUE(data_->Exec("UPDATE t SET v = v + 1 WHERE id = 1").ok());
  ASSERT_TRUE(engine_->CommitWithSnapshot("s2").ok());

  const std::string as_of = "SELECT AS OF " + std::to_string(*snap) + " ";
  const std::vector<std::string> queries = {
      as_of + "id, v FROM t WHERE id = 0",
      as_of + "id, v FROM t WHERE id = 399",
      as_of + "id, v FROM t WHERE id >= 150 AND id < 170",
      as_of + "id, v FROM t WHERE id < 0",
      as_of + "COUNT(*), SUM(v), MIN(v), MAX(v), AVG(v) FROM t "
              "WHERE id % 7 = 3",
      as_of + "id, v FROM t ORDER BY id LIMIT 5",
  };
  for (const std::string& q : queries) {
    data_->set_batch_execution(false);
    auto row_result = data_->Query(q);
    ASSERT_TRUE(row_result.ok()) << q << ": "
                                 << row_result.status().ToString();
    data_->set_batch_execution(true);
    auto batch_result = data_->Query(q);
    ASSERT_TRUE(batch_result.ok()) << q << ": "
                                   << batch_result.status().ToString();
    EXPECT_GT(data_->last_stats().exec.batches_scanned, 0) << q;
    ASSERT_EQ(batch_result->rows.size(), row_result->rows.size()) << q;
    for (size_t i = 0; i < row_result->rows.size(); ++i) {
      EXPECT_EQ(sql::EncodeRow(batch_result->rows[i]),
                sql::EncodeRow(row_result->rows[i]))
          << q << " row " << i;
    }
    data_->set_batch_execution(false);
  }
}

TEST(RqlCombineBatchTest, EquivalentToSequentialCombine) {
  const std::vector<Value> vals = {
      Value::Integer(4),  Value::Null(),       Value::Real(2.5),
      Value::Integer(-7), Value::Integer(4),   Value::Null(),
      Value::Real(4.0),   Value::Integer(100),
  };
  for (RqlAggFunc func : {RqlAggFunc::kMin, RqlAggFunc::kMax,
                          RqlAggFunc::kSum, RqlAggFunc::kCount}) {
    for (size_t start : {0u, 1u, 3u}) {
      for (Value acc : {Value::Null(), Value::Integer(10)}) {
        Value sequential = acc;
        for (size_t i = start; i < vals.size(); ++i) {
          auto r = RqlCombine(func, sequential, vals[i]);
          ASSERT_TRUE(r.ok());
          sequential = std::move(*r);
        }
        auto batched = RqlCombineBatch(func, acc, vals.data() + start,
                                       vals.size() - start);
        ASSERT_TRUE(batched.ok());
        EXPECT_EQ(sql::EncodeRow({*batched}), sql::EncodeRow({sequential}))
            << RqlAggFuncName(func) << " start=" << start;
      }
    }
  }
  // Empty input is the identity, NULL accumulator included.
  auto empty = RqlCombineBatch(RqlAggFunc::kCount, Value::Null(), nullptr, 0);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->is_null());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchExecutionTest, ::testing::Range(0, 4));

}  // namespace
}  // namespace rql
